//! Batch serving front end.
//!
//! At serving time a city produces a burst of estimation requests —
//! many slots, many crowd snapshots — and the estimator itself is
//! read-only once trained. This module fans a batch of requests across
//! worker threads, each holding one reusable [`EstimateScratch`], so
//! the per-request cost after warm-up is pure inference: no MRF
//! rebuilds (the [`TrendModel`](crate::inference::trend_model::TrendModel)
//! precompiles per-slot models) and no workspace allocations.
//!
//! Requests are independent, so the parallel batch is bit-identical to
//! the sequential one — the equivalence tests pin this down.

use crate::inference::pipeline::{EstimateScratch, SpeedEstimate, SpeedEstimator};
use parking_lot::Mutex;
use roadnet::RoadId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One serving request: estimate every road at `slot_of_day` given the
/// crowdsourced `(road, speed)` observations.
#[derive(Debug, Clone)]
pub struct EstimateRequest {
    /// Slot of day the observations belong to.
    pub slot_of_day: usize,
    /// Crowdsourced seed observations.
    pub observations: Vec<(RoadId, f64)>,
}

/// Batch serving options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads (1 = sequential, no thread spawn).
    pub threads: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { threads: 1 }
    }
}

/// Per-request latency counters aggregated over one batch.
#[derive(Debug, Clone, Copy)]
pub struct ServeMetrics {
    /// Requests served.
    pub requests: usize,
    /// Wall-clock time of the whole batch.
    pub wall_time: Duration,
    /// Sum of per-request latencies across all workers (≥ `wall_time`
    /// when more than one worker is busy).
    pub busy_time: Duration,
    /// Fastest single request.
    pub min_latency: Duration,
    /// Slowest single request.
    pub max_latency: Duration,
}

impl ServeMetrics {
    /// Mean per-request latency.
    pub fn mean_latency(&self) -> Duration {
        if self.requests == 0 {
            Duration::ZERO
        } else {
            self.busy_time / self.requests as u32
        }
    }

    /// Requests per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }
}

/// Result of [`serve_batch`]: one result per request, in request
/// order, plus the latency counters.
///
/// A request can fail individually (e.g. an empty observation list is
/// rejected with [`CoreError::NoObservations`](crate::CoreError));
/// failures never abort the rest of the batch.
#[derive(Debug)]
pub struct BatchOutcome {
    /// `estimates[i]` answers `requests[i]`.
    pub estimates: Vec<crate::Result<SpeedEstimate>>,
    /// Latency counters for the batch.
    pub metrics: ServeMetrics,
}

/// Tracks per-worker latency extremes and totals without locking.
#[derive(Debug, Clone, Copy)]
struct LatencyAcc {
    busy: Duration,
    min: Duration,
    max: Duration,
}

impl LatencyAcc {
    fn new() -> Self {
        LatencyAcc {
            busy: Duration::ZERO,
            min: Duration::MAX,
            max: Duration::ZERO,
        }
    }

    fn record(&mut self, took: Duration) {
        self.busy += took;
        self.min = self.min.min(took);
        self.max = self.max.max(took);
    }

    fn merge(&mut self, other: LatencyAcc) {
        self.busy += other.busy;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Serves a batch of requests through any [`SpeedEstimator`].
///
/// With `threads <= 1` the batch runs on the calling thread with a
/// single scratch. Otherwise workers steal request indices from a
/// shared counter, each with its own [`EstimateScratch`], so buffers
/// are reused within a worker and never shared across workers.
///
/// Requests are routed through [`SpeedEstimator::try_estimate`], so a
/// request with an empty observation list yields
/// `Err(CoreError::NoObservations)` in its slot.
pub fn serve_batch(
    estimator: &dyn SpeedEstimator,
    requests: &[EstimateRequest],
    opts: &ServeOptions,
) -> BatchOutcome {
    let t0 = Instant::now();
    let threads = opts.threads.max(1).min(requests.len().max(1));

    let mut estimates: Vec<Option<crate::Result<SpeedEstimate>>> =
        Vec::with_capacity(requests.len());
    estimates.resize_with(requests.len(), || None);
    let mut latency = LatencyAcc::new();

    if threads <= 1 {
        let mut scratch = EstimateScratch::new();
        for (slot, req) in estimates.iter_mut().zip(requests) {
            let t = Instant::now();
            let est = estimator.try_estimate(req.slot_of_day, &req.observations, &mut scratch);
            latency.record(t.elapsed());
            *slot = Some(est);
        }
    } else {
        let next = AtomicUsize::new(0);
        let done = Mutex::new((&mut estimates, &mut latency));
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    let mut scratch = EstimateScratch::new();
                    let mut local: Vec<(usize, crate::Result<SpeedEstimate>)> = Vec::new();
                    let mut acc = LatencyAcc::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(req) = requests.get(i) else { break };
                        let t = Instant::now();
                        let est = estimator.try_estimate(
                            req.slot_of_day,
                            &req.observations,
                            &mut scratch,
                        );
                        acc.record(t.elapsed());
                        local.push((i, est));
                    }
                    let mut guard = done.lock();
                    for (i, est) in local {
                        guard.0[i] = Some(est);
                    }
                    guard.1.merge(acc);
                });
            }
        })
        .expect("serving worker panicked");
    }

    let estimates: Vec<crate::Result<SpeedEstimate>> = estimates
        .into_iter()
        .map(|e| e.expect("every request index was claimed by a worker"))
        .collect();
    let requests_served = estimates.len();
    BatchOutcome {
        estimates,
        metrics: ServeMetrics {
            requests: requests_served,
            wall_time: t0.elapsed(),
            busy_time: latency.busy,
            min_latency: if requests_served == 0 {
                Duration::ZERO
            } else {
                latency.min
            },
            max_latency: latency.max,
        },
    }
}

/// A unit of work executed on a serving worker: the closure receives
/// the worker's private [`EstimateScratch`] and must deliver its result
/// through whatever channel it captured.
pub type ServeJob = Box<dyn FnOnce(&mut EstimateScratch) + Send + 'static>;

/// A persistent serving worker pool with a bounded admission queue.
///
/// Unlike [`serve_batch`] — which fans one finite batch across
/// short-lived scoped threads — a `ServePool` keeps its workers (and
/// their scratch buffers) alive for the process lifetime, consuming
/// jobs from a bounded queue. This is the execution engine behind the
/// network daemon (`crowdspeed-server`): connection handlers submit
/// jobs with [`ServePool::try_submit`] and get *admission control* for
/// free — when the queue is full the job is handed back immediately
/// instead of queueing without bound, so overload turns into a typed
/// rejection at the protocol layer rather than unbounded memory growth
/// and collapsing tail latency.
///
/// Each worker owns one [`EstimateScratch`], preserving the
/// one-scratch-per-thread reuse discipline (and therefore bit-identical
/// results) of the batch path.
///
/// # Fault isolation
///
/// A job that panics does not kill its worker: the panic is caught in
/// the worker loop, the worker's scratch is rebuilt (a panicking job
/// may have left it half-written), and the worker goes back to the
/// queue. The panic is counted ([`ServePool::panics_caught`]) and the
/// job's reply channel is simply dropped, which the submitting side
/// observes as a failed rendezvous. As a second line of defense,
/// [`ServePool::try_submit`] respawns any worker thread that died
/// anyway (e.g. a panic escaping the catch via a panicking `Drop`), so
/// the pool never shrinks permanently.
pub struct ServePool {
    tx: Option<std::sync::mpsc::SyncSender<ServeJob>>,
    rx: std::sync::Arc<Mutex<std::sync::mpsc::Receiver<ServeJob>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_target: usize,
    next_worker_id: AtomicUsize,
    panics: std::sync::Arc<std::sync::atomic::AtomicU64>,
    respawned: std::sync::atomic::AtomicU64,
    queue_capacity: usize,
}

impl std::fmt::Debug for ServePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServePool")
            .field("workers", &self.worker_target)
            .field("queue_capacity", &self.queue_capacity)
            .finish()
    }
}

fn spawn_pool_worker(
    id: usize,
    rx: std::sync::Arc<Mutex<std::sync::mpsc::Receiver<ServeJob>>>,
    panics: std::sync::Arc<std::sync::atomic::AtomicU64>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("crowdspeed-serve-{id}"))
        .spawn(move || {
            let mut scratch = EstimateScratch::new();
            loop {
                // Hold the receiver lock only to dequeue; the job
                // itself runs lock-free.
                let job = rx.lock().recv();
                match job {
                    Ok(job) => {
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                job(&mut scratch)
                            }));
                        if outcome.is_err() {
                            // The job unwound mid-write: its reply
                            // channel is gone (the submitter sees a
                            // dropped rendezvous) and the scratch may
                            // hold torn state — rebuild it.
                            scratch = EstimateScratch::new();
                            panics.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(_) => break, // pool dropped
                }
            }
        })
}

impl ServePool {
    /// Spawns `workers` (at least 1) threads consuming from a queue
    /// that admits at most `queue_capacity` waiting jobs. A capacity of
    /// 0 is a rendezvous queue: a job is admitted only when a worker is
    /// ready to take it right now.
    pub fn new(workers: usize, queue_capacity: usize) -> ServePool {
        let (tx, rx) = std::sync::mpsc::sync_channel::<ServeJob>(queue_capacity);
        let rx = std::sync::Arc::new(Mutex::new(rx));
        let panics = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let worker_target = workers.max(1);
        let workers = (0..worker_target)
            .map(|i| {
                spawn_pool_worker(
                    i,
                    std::sync::Arc::clone(&rx),
                    std::sync::Arc::clone(&panics),
                )
                .expect("failed to spawn serving worker")
            })
            .collect();
        ServePool {
            tx: Some(tx),
            rx,
            workers: Mutex::new(workers),
            worker_target,
            next_worker_id: AtomicUsize::new(worker_target),
            panics,
            respawned: std::sync::atomic::AtomicU64::new(0),
            queue_capacity,
        }
    }

    /// Replaces any worker thread that has exited while the pool is
    /// still serving, so the pool's capacity never shrinks permanently.
    /// Cheap when nothing died (one `is_finished` load per worker).
    fn respawn_dead_workers(&self) {
        let mut workers = self.workers.lock();
        for slot in workers.iter_mut() {
            if !slot.is_finished() {
                continue;
            }
            let id = self.next_worker_id.fetch_add(1, Ordering::Relaxed);
            match spawn_pool_worker(
                id,
                std::sync::Arc::clone(&self.rx),
                std::sync::Arc::clone(&self.panics),
            ) {
                Ok(fresh) => {
                    let dead = std::mem::replace(slot, fresh);
                    let _ = dead.join();
                    self.respawned.fetch_add(1, Ordering::Relaxed);
                }
                // Spawn failed (thread exhaustion): keep the dead
                // handle and retry on the next submit instead of
                // panicking the serving path.
                Err(_) => break,
            }
        }
    }

    /// Submits a job without blocking. When the queue is full the job
    /// is returned so the caller can reject the request (admission
    /// control) instead of waiting.
    pub fn try_submit(&self, job: ServeJob) -> std::result::Result<(), ServeJob> {
        self.respawn_dead_workers();
        let tx = self.tx.as_ref().expect("pool sender lives until drop");
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(std::sync::mpsc::TrySendError::Full(job))
            | Err(std::sync::mpsc::TrySendError::Disconnected(job)) => Err(job),
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.lock().len()
    }

    /// Job panics caught and isolated by the worker loop.
    pub fn panics_caught(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Dead worker threads replaced by [`ServePool::try_submit`].
    pub fn workers_respawned(&self) -> u64 {
        self.respawned.load(Ordering::Relaxed)
    }

    /// Maximum number of jobs that may wait in the queue.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }
}

impl Drop for ServePool {
    /// Closes the queue and waits for workers to drain what was
    /// already admitted — every submitted job runs exactly once (jobs
    /// that panic count as run; their reply channel is dropped).
    fn drop(&mut self) {
        drop(self.tx.take());
        for h in self.workers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::{CorrelationConfig, CorrelationGraph};
    use crate::inference::pipeline::{EstimatorConfig, TrafficEstimator};
    use trafficsim::dataset::{metro_small, DatasetParams};
    use trafficsim::HistoryStats;

    fn trained() -> (trafficsim::dataset::Dataset, TrafficEstimator, Vec<RoadId>) {
        let ds = metro_small(&DatasetParams {
            training_days: 8,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig {
                min_cotrend: 0.6,
                min_co_observations: 6,
                ..CorrelationConfig::default()
            },
        );
        let seeds: Vec<RoadId> = (0..12u32).map(|i| RoadId(i * 8)).collect();
        let est = TrafficEstimator::train(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &seeds,
            &EstimatorConfig::default(),
        )
        .unwrap();
        (ds, est, seeds)
    }

    fn requests(
        ds: &trafficsim::dataset::Dataset,
        seeds: &[RoadId],
        slots: &[usize],
    ) -> Vec<EstimateRequest> {
        let truth = &ds.test_days[0];
        slots
            .iter()
            .map(|&slot| EstimateRequest {
                slot_of_day: slot,
                observations: seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect(),
            })
            .collect()
    }

    #[test]
    fn batch_answers_every_request_in_order() {
        let (ds, est, seeds) = trained();
        let reqs = requests(&ds, &seeds, &[6, 7, 8, 9]);
        let out = serve_batch(&est, &reqs, &ServeOptions { threads: 1 });
        assert_eq!(out.estimates.len(), reqs.len());
        assert_eq!(out.metrics.requests, reqs.len());
        for (req, est) in reqs.iter().zip(&out.estimates) {
            let est = est.as_ref().unwrap();
            // Seeds echo their observations, which pin the request order.
            for &(road, speed) in &req.observations {
                assert_eq!(est.speeds[road.index()], speed);
            }
        }
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let (ds, est, seeds) = trained();
        let reqs = requests(&ds, &seeds, &[5, 6, 7, 8, 9, 10, 11, 12]);
        let seq = serve_batch(&est, &reqs, &ServeOptions { threads: 1 });
        let par = serve_batch(&est, &reqs, &ServeOptions { threads: 4 });
        for (a, b) in seq.estimates.iter().zip(&par.estimates) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.speeds, b.speeds);
            assert_eq!(a.p_up, b.p_up);
            assert_eq!(a.trends, b.trends);
        }
    }

    #[test]
    fn empty_observation_requests_get_typed_errors() {
        let (ds, est, seeds) = trained();
        let mut reqs = requests(&ds, &seeds, &[6, 7]);
        reqs.insert(
            1,
            EstimateRequest {
                slot_of_day: 8,
                observations: Vec::new(),
            },
        );
        let out = serve_batch(&est, &reqs, &ServeOptions { threads: 2 });
        assert!(out.estimates[0].is_ok());
        assert_eq!(
            out.estimates[1].as_ref().unwrap_err(),
            &crate::CoreError::NoObservations
        );
        assert!(out.estimates[2].is_ok());
        // The failed request still counts toward the batch metrics.
        assert_eq!(out.metrics.requests, 3);
    }

    #[test]
    fn pool_runs_every_admitted_job() {
        use std::sync::mpsc;
        let pool = ServePool::new(3, 64);
        assert_eq!(pool.worker_count(), 3);
        let (tx, rx) = mpsc::channel();
        for i in 0..32usize {
            let tx = tx.clone();
            pool.try_submit(Box::new(move |_scratch| {
                tx.send(i).unwrap();
            }))
            .unwrap_or_else(|_| panic!("queue of 64 rejected job {i}"));
        }
        let mut got: Vec<usize> = rx.iter().take(32).collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn pool_overload_hands_the_job_back() {
        use std::sync::mpsc;
        // One worker blocked on a gate + capacity 1: the third submit
        // must be refused and hand back the original closure.
        let pool = ServePool::new(1, 1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move |_| {
            gate_rx.recv().ok();
        }))
        .unwrap_or_else(|_| panic!("first job admitted"));
        // Give the worker a moment to pick up the blocking job so the
        // queue slot is genuinely free for the second one.
        let t0 = Instant::now();
        loop {
            let probe = pool.try_submit(Box::new(|_| {}));
            match probe {
                Ok(()) => break, // occupies the single queue slot
                Err(_) if t0.elapsed() < Duration::from_secs(5) => {
                    std::thread::yield_now();
                }
                Err(_) => panic!("worker never drained the gate job"),
            }
        }
        // Queue now holds one job while the worker is gated: full.
        let rejected = pool.try_submit(Box::new(|_| {}));
        assert!(rejected.is_err(), "overloaded pool must refuse the job");
        drop(gate_tx); // unblock, let Drop join cleanly
    }

    #[test]
    fn panicking_job_does_not_kill_its_worker() {
        use std::sync::mpsc;
        let pool = ServePool::new(1, 8);
        pool.try_submit(Box::new(|_| panic!("injected job panic")))
            .unwrap_or_else(|_| panic!("panicking job admitted"));
        // The single worker must survive the panic and run this job.
        let (tx, rx) = mpsc::channel();
        pool.try_submit(Box::new(move |_| {
            tx.send(42usize).unwrap();
        }))
        .unwrap_or_else(|_| panic!("follow-up job admitted"));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)),
            Ok(42),
            "worker must keep serving after an isolated panic"
        );
        assert_eq!(pool.panics_caught(), 1);
        assert_eq!(pool.worker_count(), 1);
    }

    #[test]
    fn every_panicking_job_is_isolated_and_counted() {
        use std::sync::mpsc;
        let pool = ServePool::new(2, 64);
        for _ in 0..10 {
            pool.try_submit(Box::new(|_| panic!("boom")))
                .unwrap_or_else(|_| panic!("panicking job admitted"));
        }
        // Both workers are still alive: two gate jobs can run at once.
        let (tx, rx) = mpsc::channel();
        for i in 0..2usize {
            let tx = tx.clone();
            pool.try_submit(Box::new(move |_| {
                tx.send(i).unwrap();
            }))
            .unwrap_or_else(|_| panic!("follow-up job admitted"));
        }
        let mut got: Vec<usize> = (0..2)
            .map(|_| rx.recv_timeout(Duration::from_secs(10)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
        // The counter is bumped after catch_unwind returns, so the
        // other worker can finish both gate jobs while the last unwind
        // is still in flight — wait for it to land.
        let t0 = std::time::Instant::now();
        while pool.panics_caught() < 10 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::yield_now();
        }
        assert_eq!(pool.panics_caught(), 10);
        assert_eq!(pool.workers_respawned(), 0, "isolation beats respawn");
    }

    #[test]
    fn metrics_are_consistent() {
        let (ds, est, seeds) = trained();
        let reqs = requests(&ds, &seeds, &[7, 8, 9]);
        let out = serve_batch(&est, &reqs, &ServeOptions { threads: 2 });
        let m = out.metrics;
        assert_eq!(m.requests, 3);
        assert!(m.min_latency <= m.max_latency);
        assert!(m.busy_time >= m.max_latency);
        assert!(m.mean_latency() >= m.min_latency && m.mean_latency() <= m.max_latency);
        assert!(m.throughput() > 0.0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (_, est, _) = trained();
        let out = serve_batch(&est, &[], &ServeOptions { threads: 4 });
        assert!(out.estimates.is_empty());
        assert_eq!(out.metrics.requests, 0);
        assert_eq!(out.metrics.mean_latency(), Duration::ZERO);
    }
}
