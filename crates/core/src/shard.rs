//! Shard planning for city-scale fleet serving.
//!
//! A [`ShardPlan`] partitions the road set into `N` shards so a fleet
//! of workers can serve `ESTIMATE` traffic in parallel, with a router
//! scatter-gathering by road id (`server::router`). The planner reuses
//! the balanced multi-source BFS partitioner behind
//! [`crate::seed::partition::partition_greedy`]
//! ([`crate::seed::partition::partition_roads`]) as a geometric first
//! pass, then **aligns shard boundaries to correlation-graph connected
//! components**: every component lands wholly inside one shard.
//!
//! Component alignment is what makes sharded serving *exact* rather
//! than approximate. Trend inference (per-component LBP convergence,
//! `graphmodel::lbp`) and deviation propagation
//! ([`crate::propagate`]) never move information across component
//! boundaries, so a worker that keeps only its own components' edges
//! computes bit-identical posteriors for its roads — the
//! router-vs-single-daemon bit-identity the serving tests pin. The
//! price is a balance constraint: a shard must take a component whole,
//! so `balance` in [`ShardStats`] degrades when one component
//! dominates the graph (the planner still produces a valid plan).
//!
//! The plan is deterministic for a given `(graph, correlation graph,
//! shard count)` — every fleet worker recomputes it locally from the
//! shared dataset flags and cross-checks the [`ShardPlan::fingerprint`]
//! instead of shipping a plan file.

use crate::correlation::CorrelationGraph;
use crate::seed::partition::partition_roads;
use crate::{CoreError, Result};
use roadnet::{RoadGraph, RoadId};

/// Version of the planning algorithm; bumped whenever the assignment
/// for a given input could change, so mixed-version fleets fail the
/// fingerprint cross-check instead of serving from disagreeing maps.
pub const SHARD_PLAN_VERSION: u32 = 1;

/// Weight slack: a component may ride with its geometric (BFS) shard
/// as long as that shard stays within this factor of the ideal weight;
/// otherwise it spills to the lightest shard.
const BALANCE_SLACK: f64 = 1.05;

/// Cut statistics and balance figures of a [`ShardPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Roads owned by each shard.
    pub shard_roads: Vec<usize>,
    /// Balance weight of each shard (`roads + 2·corr edges` — a proxy
    /// for per-sweep inference cost).
    pub shard_weights: Vec<u64>,
    /// Connected components in the correlation graph (isolated roads
    /// count as singleton components).
    pub corr_components: usize,
    /// Correlation edges crossing shard boundaries. Always 0 by
    /// construction (component alignment); reported so consumers can
    /// assert the invariant rather than trust it.
    pub corr_edges_cut: usize,
    /// Road-network adjacencies crossing shard boundaries (purely
    /// informational: the estimator does not couple over them).
    pub roadnet_edges_cut: usize,
    /// Heaviest shard's weight over the ideal `total/num_shards`
    /// weight; 1.0 is perfect balance.
    pub balance: f64,
}

/// A versioned road→shard assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Planning-algorithm version ([`SHARD_PLAN_VERSION`]).
    pub version: u32,
    /// Number of shards (clamped to the road count).
    pub num_shards: usize,
    /// Owning shard per road, indexed by `RoadId`.
    pub assignment: Vec<u16>,
    /// Cut and balance statistics.
    pub stats: ShardStats,
}

/// Connected components of a correlation graph: per-road component id
/// (compact, numbered in ascending order of each component's smallest
/// road) and the component count.
pub(crate) fn correlation_components(corr: &CorrelationGraph) -> (Vec<u32>, usize) {
    let n = corr.num_roads();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        comp[start] = next;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for (v, _) in corr.neighbors(RoadId(u as u32)) {
                if comp[v.index()] == u32::MAX {
                    comp[v.index()] = next;
                    stack.push(v.index());
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

impl ShardPlan {
    /// Plans `num_shards` component-aligned shards over the road set.
    ///
    /// `num_shards` is clamped to `[1, roads]`; shard counts above
    /// `u16::MAX` are rejected. The resulting assignment is
    /// deterministic (no randomness anywhere in the pipeline).
    pub fn plan(
        graph: &RoadGraph,
        corr: &CorrelationGraph,
        num_shards: usize,
    ) -> Result<ShardPlan> {
        let n = corr.num_roads();
        if graph.num_roads() != n {
            return Err(CoreError::ShapeMismatch {
                expected: format!("{} roads (correlation graph)", n),
                got: format!("{} roads (road graph)", graph.num_roads()),
            });
        }
        let k = num_shards.clamp(1, n.max(1));
        if k > u16::MAX as usize {
            return Err(CoreError::InsufficientData(format!(
                "{k} shards exceed the u16 assignment range"
            )));
        }

        // Pass 1 — geometry: the seed-selection partitioner labels
        // every road by balanced multi-source BFS.
        let labels = partition_roads(corr, k);

        // Pass 2 — component alignment: group roads into correlation
        // components, give each component the plurality label of its
        // members (ties to the smallest label).
        let (comp, ncomp) = correlation_components(corr);
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); ncomp];
        for r in 0..n {
            members[comp[r] as usize].push(r as u32);
        }
        let mut comp_edges = vec![0u64; ncomp];
        for e in corr.edges() {
            comp_edges[comp[e.a.index()] as usize] += 1;
        }
        let mut preferred = Vec::with_capacity(ncomp);
        let mut weight = Vec::with_capacity(ncomp);
        let mut votes = vec![0u32; k];
        for c in 0..ncomp {
            for v in votes.iter_mut() {
                *v = 0;
            }
            for &r in &members[c] {
                votes[labels[r as usize]] += 1;
            }
            let best = (0..k)
                .max_by_key(|&s| (votes[s], std::cmp::Reverse(s)))
                .expect("k >= 1");
            preferred.push(best);
            weight.push(members[c].len() as u64 + 2 * comp_edges[c]);
        }

        // Pass 3 — balance: place components heaviest-first; each goes
        // to its geometric shard while that shard stays within
        // `BALANCE_SLACK` of the ideal weight, else to the lightest
        // shard. Deterministic order: weight desc, component id asc.
        let total: u64 = weight.iter().sum();
        let ideal = total as f64 / k as f64;
        let mut order: Vec<usize> = (0..ncomp).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(weight[c]), c));
        let mut shard_weights = vec![0u64; k];
        let mut assignment = vec![0u16; n];
        for &c in &order {
            let pref = preferred[c];
            let target = if (shard_weights[pref] + weight[c]) as f64 <= ideal * BALANCE_SLACK {
                pref
            } else {
                (0..k)
                    .min_by_key(|&s| (shard_weights[s], s))
                    .expect("k >= 1")
            };
            shard_weights[target] += weight[c];
            for &r in &members[c] {
                assignment[r as usize] = target as u16;
            }
        }

        // Statistics.
        let mut shard_roads = vec![0usize; k];
        for &a in &assignment {
            shard_roads[a as usize] += 1;
        }
        let corr_edges_cut = corr
            .edges()
            .iter()
            .filter(|e| assignment[e.a.index()] != assignment[e.b.index()])
            .count();
        debug_assert_eq!(corr_edges_cut, 0, "component alignment violated");
        let mut roadnet_edges_cut = 0usize;
        for r in 0..n {
            let road = RoadId(r as u32);
            for &nb in graph.neighbors(road) {
                if nb.index() > r && assignment[r] != assignment[nb.index()] {
                    roadnet_edges_cut += 1;
                }
            }
        }
        let max_w = shard_weights.iter().copied().max().unwrap_or(0);
        let balance = if total == 0 {
            1.0
        } else {
            max_w as f64 / ideal
        };

        Ok(ShardPlan {
            version: SHARD_PLAN_VERSION,
            num_shards: k,
            assignment,
            stats: ShardStats {
                shard_roads,
                shard_weights,
                corr_components: ncomp,
                corr_edges_cut,
                roadnet_edges_cut,
                balance,
            },
        })
    }

    /// The shard owning `road`.
    #[inline]
    pub fn shard_of(&self, road: RoadId) -> usize {
        self.assignment[road.index()] as usize
    }

    /// Number of roads in the plan.
    #[inline]
    pub fn num_roads(&self) -> usize {
        self.assignment.len()
    }

    /// The roads owned by `shard`, ascending.
    pub fn owned_roads(&self, shard: usize) -> Vec<RoadId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a as usize == shard)
            .map(|(r, _)| RoadId(r as u32))
            .collect()
    }

    /// FNV-1a fingerprint over the plan version, shard count, and full
    /// assignment. Fleet workers and the router each compute the plan
    /// locally and compare fingerprints before serving together.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for b in self.version.to_le_bytes() {
            eat(b);
        }
        for b in (self.num_shards as u64).to_le_bytes() {
            eat(b);
        }
        for &a in &self.assignment {
            for b in a.to_le_bytes() {
                eat(b);
            }
        }
        h
    }
}

/// A worker's serving-time view of one shard: the roads it owns plus a
/// **masked trend model** covering exactly the live correlation
/// components that intersect those roads.
///
/// Built by [`crate::inference::pipeline::TrafficEstimator::shard_view`]
/// at every epoch publish (the active component set can grow as
/// ingested days merge components). The masked model keeps the full
/// road-id space — priors, evidence and marginals stay full-width so no
/// index translation appears anywhere on the serving path — but drops
/// every edge outside the shard's components, making each inference
/// sweep cost proportional to the shard's share of the graph while
/// remaining bit-identical to the full model on owned roads (see the
/// restriction notes on `graphmodel::lbp::run_with` and the module
/// docs above).
#[derive(Debug, Clone)]
pub struct ShardView {
    pub(crate) shard: usize,
    pub(crate) plan_fingerprint: u64,
    /// Owned roads, ascending.
    pub(crate) owned: Vec<RoadId>,
    /// Road is in a live component intersecting the owned set.
    pub(crate) active: Vec<bool>,
    /// Masked trend model (full-width, component-subset edges).
    pub(crate) trend: crate::inference::trend_model::TrendModel,
}

impl ShardView {
    /// The shard index this view serves.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Fingerprint of the plan the view was derived from.
    pub fn plan_fingerprint(&self) -> u64 {
        self.plan_fingerprint
    }

    /// The roads this shard owns, ascending.
    pub fn owned_roads(&self) -> &[RoadId] {
        &self.owned
    }

    /// Whether `road` is owned by this shard.
    pub fn owns(&self, road: RoadId) -> bool {
        self.owned.binary_search(&road).is_ok()
    }

    /// Number of roads in the shard's active (component-closed) set;
    /// always ≥ the owned count.
    pub fn active_roads(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Correlation edges the masked model retains.
    pub fn active_edges(&self) -> usize {
        self.trend.correlation().num_edges()
    }
}

/// A shard worker's answer for an owned-road subset: every vector is
/// aligned to the request's road list (see
/// [`crate::inference::pipeline::TrafficEstimator::estimate_shard_with`]).
#[derive(Debug, Clone)]
pub struct ShardEstimate {
    /// Estimated speed (km/h) per requested road; observed seeds echo
    /// their crowd speeds verbatim.
    pub speeds: Vec<f64>,
    /// Step-1 posterior up-probability per requested road.
    pub p_up: Vec<f64>,
    /// Hard trend decisions per requested road.
    pub trends: Vec<bool>,
    /// Seed-coverage confidence per requested road.
    pub confidence: Vec<f64>,
    /// Iterations the trend engine used on the masked model. Over a
    /// full scatter (every shard queried) the maximum across shards
    /// equals the unsharded engine's count: each component freezes
    /// identically in both.
    pub trend_iterations: usize,
    /// Observations naming roads outside the estimator's seed set.
    /// Every shard sees the full observation list, so each reports the
    /// same value as the unsharded estimator; routers merge with `max`.
    pub ignored_observations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::{CorrelationConfig, CorrelationGraph};
    use trafficsim::dataset::{metro_small, DatasetParams};
    use trafficsim::HistoryStats;

    fn small_inputs() -> (RoadGraph, CorrelationGraph) {
        let ds = metro_small(&DatasetParams {
            training_days: 6,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        // A high co-trend threshold fragments metro-small into several
        // components, which is the structure sharding exploits.
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig {
                min_cotrend: 0.8,
                min_co_observations: 6,
                ..CorrelationConfig::default()
            },
        );
        (ds.graph, corr)
    }

    #[test]
    fn plan_is_deterministic_and_component_aligned() {
        let (graph, corr) = small_inputs();
        let a = ShardPlan::plan(&graph, &corr, 3).unwrap();
        let b = ShardPlan::plan(&graph, &corr, 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_shards, 3);
        assert_eq!(a.stats.corr_edges_cut, 0);
        // Every component lands in exactly one shard.
        let (comp, ncomp) = correlation_components(&corr);
        let mut shard_of_comp = vec![None; ncomp];
        for (r, &c) in comp.iter().enumerate() {
            let s = a.assignment[r];
            match shard_of_comp[c as usize] {
                None => shard_of_comp[c as usize] = Some(s),
                Some(prev) => assert_eq!(prev, s, "component {c} split"),
            }
        }
    }

    #[test]
    fn plan_covers_all_roads_with_reasonable_balance() {
        let (graph, corr) = small_inputs();
        let plan = ShardPlan::plan(&graph, &corr, 4).unwrap();
        assert_eq!(plan.stats.shard_roads.iter().sum::<usize>(), 100);
        for s in 0..4 {
            assert!(
                plan.stats.shard_roads[s] > 0,
                "shard {s} empty: {:?}",
                plan.stats.shard_roads
            );
        }
        // Provable bound of the placement rule: a shard exceeds the
        // slack band only by being the lightest when it received a
        // spilled component, so max weight ≤ ideal + heaviest
        // component (components are indivisible).
        let (comp, ncomp) = correlation_components(&corr);
        let mut comp_w = vec![0u64; ncomp];
        for &c in &comp {
            comp_w[c as usize] += 1;
        }
        for e in corr.edges() {
            comp_w[comp[e.a.index()] as usize] += 2;
        }
        let w_max = *comp_w.iter().max().unwrap() as f64;
        let total: u64 = plan.stats.shard_weights.iter().sum();
        let ideal = total as f64 / 4.0;
        let bound = (1.0 + w_max / ideal).max(BALANCE_SLACK);
        assert!(
            plan.stats.balance <= bound + 1e-9,
            "balance {} exceeds bound {bound} with weights {:?}",
            plan.stats.balance,
            plan.stats.shard_weights
        );
        // owned_roads is the inverse of the assignment.
        let mut total = 0;
        for s in 0..4 {
            let owned = plan.owned_roads(s);
            assert!(owned.windows(2).all(|w| w[0] < w[1]));
            for &r in &owned {
                assert_eq!(plan.shard_of(r), s);
            }
            total += owned.len();
        }
        assert_eq!(total, plan.num_roads());
    }

    #[test]
    fn degenerate_shard_counts() {
        let (graph, corr) = small_inputs();
        let one = ShardPlan::plan(&graph, &corr, 1).unwrap();
        assert!(one.assignment.iter().all(|&a| a == 0));
        assert_eq!(one.stats.roadnet_edges_cut, 0);
        assert!((one.stats.balance - 1.0).abs() < 1e-12);
        // Zero clamps to one; absurd counts clamp to the road count.
        let zero = ShardPlan::plan(&graph, &corr, 0).unwrap();
        assert_eq!(zero.num_shards, 1);
        let many = ShardPlan::plan(&graph, &corr, 10_000).unwrap();
        assert_eq!(many.num_shards, 100);
        assert!(many.assignment.iter().all(|&a| (a as usize) < 100));
    }

    #[test]
    fn fingerprint_tracks_plan_identity() {
        let (graph, corr) = small_inputs();
        let a = ShardPlan::plan(&graph, &corr, 2).unwrap();
        let b = ShardPlan::plan(&graph, &corr, 2).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = ShardPlan::plan(&graph, &corr, 3).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn mismatched_graphs_are_rejected() {
        let (graph, _) = small_inputs();
        let corr = CorrelationGraph::from_edges(3, Vec::new()).unwrap();
        assert!(matches!(
            ShardPlan::plan(&graph, &corr, 2),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }
}
