//! Property-based tests of the core algorithms: submodularity of the
//! seed objective, greedy guarantees, metric identities, propagation
//! bounds.

use crowdspeed::correlation::{CorrelationEdge, CorrelationGraph};
use crowdspeed::metrics::ErrorStats;
use crowdspeed::prelude::*;
use crowdspeed::propagate::propagate_deviations;
use proptest::prelude::*;
use roadnet::RoadId;

/// Strategy: a random correlation graph as (n, weighted edges).
fn random_corr() -> impl Strategy<Value = CorrelationGraph> {
    (3usize..16).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32, 0.55f64..0.95), 0..30);
        (Just(n), edges).prop_map(|(n, edges)| {
            let list: Vec<CorrelationEdge> = edges
                .into_iter()
                .filter(|(a, b, _)| a != b)
                .map(|(a, b, p)| CorrelationEdge {
                    a: RoadId(a.min(b)),
                    b: RoadId(a.max(b)),
                    cotrend: p,
                    support: 20,
                })
                .collect();
            CorrelationGraph::from_edges(n, list).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn objective_is_monotone(corr in random_corr(), extra in 0u32..16) {
        let model = InfluenceModel::build(&corr, &InfluenceConfig::default());
        let obj = SeedObjective::new(&model);
        let n = corr.num_roads() as u32;
        let base: Vec<RoadId> = (0..n.min(3)).map(RoadId).collect();
        let mut bigger = base.clone();
        let cand = RoadId(extra % n);
        if !bigger.contains(&cand) {
            bigger.push(cand);
        }
        prop_assert!(obj.value(&bigger) >= obj.value(&base) - 1e-9);
    }

    #[test]
    fn objective_is_submodular(corr in random_corr(), s in 0u32..16, t in 0u32..16) {
        // gain(s | A) >= gain(s | A ∪ {t}) for any A (here A = {0}).
        let n = corr.num_roads() as u32;
        let (s, t) = (RoadId(s % n), RoadId(t % n));
        prop_assume!(s != t && s.0 != 0 && t.0 != 0);
        let model = InfluenceModel::build(&corr, &InfluenceConfig::default());
        let obj = SeedObjective::new(&model);
        let mut small = obj.initial_miss();
        obj.apply(&mut small, RoadId(0));
        let mut big = small.clone();
        obj.apply(&mut big, t);
        prop_assert!(obj.gain(&small, s) >= obj.gain(&big, s) - 1e-9);
    }

    #[test]
    fn objective_bounded_by_road_count(corr in random_corr()) {
        let model = InfluenceModel::build(&corr, &InfluenceConfig::default());
        let obj = SeedObjective::new(&model);
        let all: Vec<RoadId> = (0..corr.num_roads() as u32).map(RoadId).collect();
        let v = obj.value(&all);
        prop_assert!(v <= corr.num_roads() as f64 + 1e-9);
        prop_assert!(v >= all.len() as f64 - 1e-9, "each seed covers itself fully");
    }

    #[test]
    fn lazy_matches_plain_greedy(corr in random_corr(), k in 1usize..8) {
        // Both algorithms break exact-gain ties towards the smaller
        // road id (greedy keeps the first maximum it scans; the CELF
        // heap orders equal gains by reversed road id), and both
        // evaluate gains with the same summation order — so the seed
        // *sequences* must match exactly, not just the objectives.
        let model = InfluenceModel::build(&corr, &InfluenceConfig::default());
        let a = greedy(&model, k);
        let b = lazy_greedy(&model, k);
        prop_assert_eq!(&a.seeds, &b.seeds);
        prop_assert!((a.objective - b.objective).abs() < 1e-9);
        for (ga, gb) in a.gains.iter().zip(&b.gains) {
            prop_assert_eq!(ga.to_bits(), gb.to_bits());
        }
    }

    #[test]
    fn greedy_meets_approximation_guarantee(corr in random_corr(), k in 1usize..4) {
        prop_assume!(corr.num_roads() <= 12);
        let model = InfluenceModel::build(&corr, &InfluenceConfig::default());
        let opt = exhaustive(&model, k);
        let g = greedy(&model, k);
        prop_assert!(g.objective >= 0.632 * opt.objective - 1e-9);
        prop_assert!(g.objective <= opt.objective + 1e-9);
    }

    #[test]
    fn influence_is_a_probability(corr in random_corr()) {
        let model = InfluenceModel::build(&corr, &InfluenceConfig::default());
        for s in 0..corr.num_roads() as u32 {
            for (r, q) in model.reach(RoadId(s)).iter() {
                prop_assert!(q > 0.0 && q <= 1.0, "q({s} -> {}) = {q}", r.0);
            }
            prop_assert_eq!(model.influence(RoadId(s), RoadId(s)), 1.0);
        }
    }

    #[test]
    fn propagation_stays_in_seed_hull(corr in random_corr(), d0 in 0.3f64..1.7, d1 in 0.3f64..1.7) {
        let n = corr.num_roads() as u32;
        prop_assume!(n >= 2);
        let seeds = vec![(RoadId(0), d0), (RoadId(1 % n), d1)];
        let dev = propagate_deviations(&corr, &seeds, 40, 0.2);
        // With the neutral anchor, every value lies in the convex hull
        // of {seed deviations, 1.0}.
        let lo = d0.min(d1).min(1.0) - 1e-9;
        let hi = d0.max(d1).max(1.0) + 1e-9;
        for (r, v) in dev.iter().enumerate() {
            prop_assert!(*v >= lo && *v <= hi, "road {r}: {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn error_stats_merge_is_commutative(
        t1 in prop::collection::vec(5.0f64..100.0, 1..20),
        t2 in prop::collection::vec(5.0f64..100.0, 1..20),
        noise in prop::collection::vec(-10.0f64..10.0, 40),
    ) {
        let e1: Vec<f64> = t1.iter().zip(&noise).map(|(t, n)| t + n).collect();
        let e2: Vec<f64> = t2.iter().zip(noise.iter().rev()).map(|(t, n)| t + n).collect();
        let a = ErrorStats::from_pairs(t1.iter().zip(&e1));
        let b = ErrorStats::from_pairs(t2.iter().zip(&e2));
        let ab = a.merge(b);
        let ba = b.merge(a);
        prop_assert!((ab.mae - ba.mae).abs() < 1e-9);
        prop_assert!((ab.rmse - ba.rmse).abs() < 1e-9);
        prop_assert!((ab.mape - ba.mape).abs() < 1e-9);
        prop_assert_eq!(ab.count, ba.count);
    }

    #[test]
    fn error_stats_merge_matches_pooled(
        truth in prop::collection::vec(5.0f64..100.0, 2..30),
        noise in prop::collection::vec(-10.0f64..10.0, 30),
    ) {
        let est: Vec<f64> = truth.iter().zip(&noise).map(|(t, n)| t + n).collect();
        let split = truth.len() / 2;
        let a = ErrorStats::from_pairs(truth[..split].iter().zip(&est[..split]));
        let b = ErrorStats::from_pairs(truth[split..].iter().zip(&est[split..]));
        let merged = a.merge(b);
        let pooled = ErrorStats::from_pairs(truth.iter().zip(&est));
        prop_assert!((merged.mae - pooled.mae).abs() < 1e-9);
        prop_assert!((merged.rmse - pooled.rmse).abs() < 1e-9);
        prop_assert_eq!(merged.count, pooled.count);
    }

    #[test]
    fn rethreshold_never_adds_edges(corr in random_corr(), tau in 0.5f64..1.0) {
        let strict = corr.rethreshold(tau);
        prop_assert!(strict.num_edges() <= corr.num_edges());
        for e in strict.edges() {
            prop_assert!(e.cotrend >= tau || e.cotrend <= 1.0 - tau);
        }
    }
}
