//! Criterion microbenchmarks of the hot kernels behind the experiment
//! binaries: one LBP inference, one greedy/lazy selection, one HLM
//! training run, correlation-graph construction, and one simulated day.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdspeed::prelude::*;
use roadnet::RoadId;
use std::hint::black_box;
use trafficsim::dataset::{metro_small, Dataset, DatasetParams};

fn bench_dataset() -> Dataset {
    metro_small(&DatasetParams {
        training_days: 10,
        test_days: 1,
        ..DatasetParams::default()
    })
}

struct Prepared {
    ds: Dataset,
    stats: HistoryStats,
    corr: crowdspeed::correlation::CorrelationGraph,
    influence: InfluenceModel,
    seeds: Vec<RoadId>,
}

fn prepare() -> Prepared {
    let ds = bench_dataset();
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig {
            min_cotrend: 0.6,
            min_co_observations: 8,
            ..CorrelationConfig::default()
        },
    );
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let seeds = lazy_greedy(&influence, 10).seeds;
    Prepared {
        ds,
        stats,
        corr,
        influence,
        seeds,
    }
}

fn lbp_inference(c: &mut Criterion) {
    let p = prepare();
    let model = crowdspeed::inference::trend_model::TrendModel::new(
        p.corr.clone(),
        &p.stats,
        Default::default(),
    );
    let slot = 8;
    let truth = &p.ds.test_days[0];
    let obs: Vec<(RoadId, bool)> = p
        .seeds
        .iter()
        .map(|&s| (s, p.stats.trend_of(slot, s, truth.speed(slot, s))))
        .collect();
    c.bench_function("lbp_inference", |b| {
        b.iter(|| black_box(model.infer(slot, &obs, &TrendEngine::default())))
    });
}

fn seed_selection(c: &mut Criterion) {
    let p = prepare();
    let mut g = c.benchmark_group("seed_selection");
    for k in [5usize, 20] {
        g.bench_with_input(BenchmarkId::new("greedy", k), &k, |b, &k| {
            b.iter(|| black_box(greedy(&p.influence, k)))
        });
        g.bench_with_input(BenchmarkId::new("lazy_greedy", k), &k, |b, &k| {
            b.iter(|| black_box(lazy_greedy(&p.influence, k)))
        });
    }
    g.finish();
}

fn hlm_fit(c: &mut Criterion) {
    let p = prepare();
    c.bench_function("hlm_train", |b| {
        b.iter(|| {
            black_box(
                HlmModel::train(
                    &p.ds.graph,
                    &p.ds.history,
                    &p.stats,
                    &p.corr,
                    &p.seeds,
                    &HlmConfig::default(),
                )
                .unwrap(),
            )
        })
    });
}

fn correlation_build(c: &mut Criterion) {
    let ds = bench_dataset();
    let stats = HistoryStats::compute(&ds.history);
    c.bench_function("correlation_build", |b| {
        b.iter(|| {
            black_box(CorrelationGraph::build(
                &ds.graph,
                &ds.history,
                &stats,
                &CorrelationConfig::default(),
            ))
        })
    });
}

fn simulator_day(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("simulator_day", |b| {
        let mut day = 0u64;
        b.iter(|| {
            day += 1;
            black_box(ds.simulator.simulate_day(day))
        })
    });
}

fn end_to_end_estimate(c: &mut Criterion) {
    let p = prepare();
    let est = TrafficEstimator::train(
        &p.ds.graph,
        &p.ds.history,
        &p.stats,
        &p.corr,
        &p.seeds,
        &EstimatorConfig::default(),
    )
    .unwrap();
    let slot = 8;
    let truth = &p.ds.test_days[0];
    let obs: Vec<(RoadId, f64)> = p.seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
    c.bench_function("estimate_one_slot", |b| {
        b.iter(|| black_box(est.estimate(slot, &obs)))
    });
    // Serving path: same estimate with a reused per-worker scratch —
    // no MRF rebuilds, no workspace allocations after warm-up.
    let mut scratch = EstimateScratch::new();
    c.bench_function("estimate_one_slot_warm", |b| {
        b.iter(|| black_box(est.estimate_with(slot, &obs, &mut scratch)))
    });
}

fn serve_throughput(c: &mut Criterion) {
    let p = prepare();
    let est = TrafficEstimator::train(
        &p.ds.graph,
        &p.ds.history,
        &p.stats,
        &p.corr,
        &p.seeds,
        &EstimatorConfig::default(),
    )
    .unwrap();
    let truth = &p.ds.test_days[0];
    let requests: Vec<EstimateRequest> = (0..p.ds.clock.slots_per_day)
        .map(|slot| EstimateRequest {
            slot_of_day: slot,
            observations: p.seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect(),
        })
        .collect();
    let mut g = c.benchmark_group("serve_throughput");
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(crowdspeed::serve::serve_batch(
                        &est,
                        &requests,
                        &ServeOptions { threads },
                    ))
                })
            },
        );
    }
    g.finish();
}

fn deviation_propagation(c: &mut Criterion) {
    let p = prepare();
    let seed_devs: Vec<(RoadId, f64)> = p
        .seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, 0.8 + 0.04 * i as f64))
        .collect();
    c.bench_function("deviation_propagation", |b| {
        b.iter(|| {
            black_box(crowdspeed::propagate::propagate_deviations(
                &p.corr, &seed_devs, 30, 0.2,
            ))
        })
    });
}

fn online_ingest_day(c: &mut Criterion) {
    let p = prepare();
    let mut online = crowdspeed::online::OnlineCorrelation::bootstrap(
        &p.ds.graph,
        &p.ds.history,
        &CorrelationConfig::default(),
    );
    let day = p.ds.test_days[0].clone();
    c.bench_function("online_ingest_day", |b| {
        b.iter(|| {
            online.ingest_day(black_box(&day)).unwrap();
        })
    });
}

fn meanfield_inference(c: &mut Criterion) {
    let p = prepare();
    let model = crowdspeed::inference::trend_model::TrendModel::new(
        p.corr.clone(),
        &p.stats,
        Default::default(),
    );
    let slot = 8;
    let truth = &p.ds.test_days[0];
    let obs: Vec<(RoadId, bool)> = p
        .seeds
        .iter()
        .map(|&s| (s, p.stats.trend_of(slot, s, truth.speed(slot, s))))
        .collect();
    let engine = TrendEngine::MeanField(graphmodel::meanfield::MeanFieldOptions::default());
    c.bench_function("meanfield_inference", |b| {
        b.iter(|| black_box(model.infer(slot, &obs, &engine)))
    });
}

fn route_planning(c: &mut Criterion) {
    let p = prepare();
    let speeds: Vec<f64> = p.ds.graph.road_ids().map(|r| p.stats.mean(8, r)).collect();
    let n = p.ds.graph.num_roads();
    c.bench_function("fastest_route", |b| {
        b.iter(|| {
            black_box(crowdspeed::routing::fastest_route(
                &p.ds.graph,
                &speeds,
                RoadId(0),
                RoadId((n - 1) as u32),
            ))
        })
    });
}

criterion_group!(
    benches,
    lbp_inference,
    seed_selection,
    hlm_fit,
    correlation_build,
    simulator_day,
    end_to_end_estimate,
    serve_throughput,
    deviation_propagation,
    online_ingest_day,
    meanfield_inference,
    route_planning
);
criterion_main!(benches);
