#![warn(missing_docs)]

//! Shared plumbing for the experiment binaries (`src/bin/exp_*.rs`).
//!
//! Each binary regenerates one table or figure of the paper's
//! evaluation (see `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for recorded results). This library provides the
//! common dataset presets and an aligned-table printer so every
//! experiment reports in the same format.

use std::time::Instant;

/// Standard evaluation datasets used by most experiments.
pub mod presets {
    use trafficsim::dataset::{
        grid_medium, metro_large, metro_medium, metro_small, Dataset, DatasetParams,
    };

    /// The default number of training days in evaluation datasets.
    pub const TRAINING_DAYS: usize = 20;

    /// Standard evaluation parameters (20 training days, 3 test days).
    pub fn eval_params() -> DatasetParams {
        DatasetParams {
            training_days: TRAINING_DAYS,
            test_days: 3,
            ..DatasetParams::default()
        }
    }

    /// The metro (ring-radial) evaluation city.
    pub fn metro() -> Dataset {
        metro_medium(&eval_params())
    }

    /// The grid evaluation city.
    pub fn grid() -> Dataset {
        grid_medium(&eval_params())
    }

    /// The large ring-radial city (≈4k roads) — the incremental-ingest
    /// scaling target, where one day's delta is a small fraction of
    /// the network.
    pub fn large() -> Dataset {
        metro_large(&eval_params())
    }

    /// A fast small city for smoke runs (`--quick`).
    pub fn quick() -> Dataset {
        metro_small(&DatasetParams {
            training_days: 10,
            test_days: 1,
            ..DatasetParams::default()
        })
    }

    /// Representative slots covering night, both rushes and midday —
    /// keeps full-method sweeps tractable while spanning the day.
    pub fn representative_slots(slots_per_day: usize) -> Vec<usize> {
        let hours = [3.0, 7.5, 8.25, 9.0, 12.0, 15.0, 17.5, 18.25, 19.0, 22.0];
        let mut slots: Vec<usize> = hours
            .iter()
            .map(|&h| ((h / 24.0) * slots_per_day as f64) as usize)
            .map(|s| s.min(slots_per_day - 1))
            .collect();
        slots.dedup();
        slots
    }
}

/// Minimal aligned-table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Times a closure, returning its result and the elapsed milliseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64() * 1e3)
}

/// Formats a float with 3 significant digits for table cells.
pub fn f3(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let mag = x.abs().log10().floor() as i32;
    let decimals = (2 - mag).clamp(0, 6) as usize;
    format!("{x:.decimals$}")
}

/// True when the process was invoked with `--quick` (smoke-run mode
/// used by CI and the integration tests).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["method", "mape"]);
        t.row(&["two-step".into(), "0.081".into()]);
        t.row(&["knn".into(), "0.124".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("method"));
        assert!(lines[2].ends_with("0.081"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(0.0), "0");
        assert_eq!(f3(0.08123), "0.0812");
        assert_eq!(f3(123.4), "123");
        assert_eq!(f3(1.5), "1.50");
    }

    #[test]
    fn representative_slots_in_range() {
        for spd in [24, 48, 96] {
            let slots = presets::representative_slots(spd);
            assert!(!slots.is_empty());
            assert!(slots.iter().all(|&s| s < spd));
        }
    }

    #[test]
    fn timed_measures() {
        let (v, ms) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }
}
