//! Stage-level profiling harness for HLM training: times trend-model
//! compilation, trainer construction, the fold, and the ridge fit
//! separately so a flat E11 `train_ms` can be attributed to the stage
//! that actually ate the time (the per-cell LBP pass, historically).
//! `--quick` selects the small preset; `T=<n>` sets the thread count.

use bench::timed;
use crowdspeed::inference::hlm::HlmTrainer;
use crowdspeed::inference::trend_model::TrendModel;
use crowdspeed::prelude::*;
use crowdspeed::seed::lazy_greedy::lazy_greedy_threads;

fn main() {
    let ds = if std::env::args().any(|a| a == "--quick") {
        bench::presets::quick()
    } else {
        bench::presets::metro()
    };
    let threads: usize = std::env::var("T")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let k = (ds.graph.num_roads() / 8).max(4);
    let stats = HistoryStats::compute(&ds.history);
    let ccfg = CorrelationConfig {
        min_cotrend: 0.6,
        min_co_observations: 6,
        ..CorrelationConfig::default()
    };
    let corr = CorrelationGraph::build_threaded(&ds.graph, &ds.history, &stats, &ccfg, threads);
    let influence = InfluenceModel::build_threaded(&corr, &InfluenceConfig::default(), threads);
    let seeds = lazy_greedy_threads(&influence, k, threads).seeds;
    let config = EstimatorConfig::default();

    println!(
        "{}: {} roads, {} days, {} slots/day, k={k}, {} edges, threads={threads}",
        ds.name,
        ds.graph.num_roads(),
        ds.history.num_days(),
        ds.clock.slots_per_day,
        corr.num_edges()
    );

    let (ctx_trend, t_trend) =
        timed(|| TrendModel::new_threaded(corr.clone(), &stats, config.trend.clone(), threads));
    println!("TrendModel::new_threaded:  {t_trend:10.1} ms");

    let (clone_cost, t_clone) = timed(|| (ctx_trend.clone(), config.engine.clone()));
    println!("trend ctx deep clone:      {t_clone:10.1} ms");
    drop(clone_cost);

    let (trainer, t_new) = timed(|| {
        HlmTrainer::new(
            &ds.graph,
            &corr,
            &seeds,
            &config.hlm,
            Some((
                std::borrow::Cow::Borrowed(&ctx_trend),
                config.engine.clone(),
            )),
            threads,
        )
        .unwrap()
    });
    let mut trainer = trainer;
    println!("HlmTrainer::new:           {t_new:10.1} ms");

    let (fs, t_fold) = timed(|| trainer.fold(&ds.history, &stats, threads).unwrap());
    println!("HlmTrainer::fold:          {t_fold:10.1} ms  ({fs:?})");

    let (_model, t_fit) = timed(|| trainer.fit(threads).unwrap());
    println!("HlmTrainer::fit:           {t_fit:10.1} ms");
}
