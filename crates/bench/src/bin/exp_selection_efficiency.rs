//! Experiment E7 — seed-selection efficiency vs budget K.
//!
//! Times plain greedy, lazy greedy (CELF) and partition greedy on a
//! large synthetic correlation graph as the budget grows, reporting
//! wall time, gain evaluations, and the objective each achieves (lazy
//! matches plain exactly; partition trades a little quality for speed).
//! The evaluation-count gap between plain and lazy greedy is the
//! reproduction of the paper's "2 orders of magnitude" efficiency
//! claim on the selection side.

use bench::{f3, timed, Table};
use crowdspeed::correlation::{CorrelationEdge, CorrelationGraph};
use crowdspeed::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::generate::{grid_city, GridParams};

/// Builds a synthetic correlation graph over a grid city: every
/// road-adjacency pair is correlated with a random strength, which
/// isolates selection cost from traffic simulation.
fn synthetic_corr(width: usize, seed: u64) -> CorrelationGraph {
    let g = grid_city(&GridParams {
        width,
        height: width,
        ..GridParams::default()
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for a in g.road_ids() {
        for &b in g.neighbors(a) {
            if a < b {
                edges.push(CorrelationEdge {
                    a,
                    b,
                    cotrend: rng.gen_range(0.65..0.92),
                    support: 100,
                });
            }
        }
    }
    CorrelationGraph::from_edges(g.num_roads(), edges).expect("synthetic weights are valid")
}

fn main() {
    let width = if bench::quick_mode() { 16 } else { 50 };
    let corr = synthetic_corr(width, 9);
    let n = corr.num_roads();
    let config = InfluenceConfig::default();
    let influence = InfluenceModel::build(&corr, &config);

    println!(
        "E7: seed-selection cost vs budget (n = {n}, corr edges = {}, avg reach = {:.1})",
        corr.num_edges(),
        influence.avg_reach()
    );
    let mut t = Table::new(&[
        "K",
        "greedy-ms",
        "greedy-evals",
        "lazy-ms",
        "lazy-evals",
        "speedup(evals)",
        "partition8-ms",
        "obj greedy",
        "obj lazy",
        "obj part8",
    ]);

    let fracs: &[f64] = if bench::quick_mode() {
        &[0.02, 0.05]
    } else {
        &[0.01, 0.02, 0.05, 0.10, 0.20]
    };
    for &frac in fracs {
        let k = ((n as f64 * frac) as usize).max(2);
        let (g, g_ms) = timed(|| greedy(&influence, k));
        let (l, l_ms) = timed(|| lazy_greedy(&influence, k));
        let (p, p_ms) = timed(|| partition_greedy(&corr, &config, k, 8));
        // Re-score partition seeds on the shared full-graph objective.
        let p_obj = SeedObjective::new(&influence).value(&p.seeds);
        t.row(&[
            k.to_string(),
            f3(g_ms),
            g.evaluations.to_string(),
            f3(l_ms),
            l.evaluations.to_string(),
            f3(g.evaluations as f64 / l.evaluations as f64),
            f3(p_ms),
            f3(g.objective),
            f3(l.objective),
            f3(p_obj),
        ]);
    }
    t.print();
}
