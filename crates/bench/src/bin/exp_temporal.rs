//! Experiment E12 (extension) — time-varying seed sets.
//!
//! The paper selects one static seed set; its future-work direction of
//! adapting acquisition over time is implemented in
//! [`crowdspeed::seed::temporal`]. This experiment compares, under the
//! same per-slot budget `K`:
//!
//! * **static** — one all-day lazy-greedy seed set;
//! * **temporal** — a per-period seed plan from period-restricted
//!   correlation graphs (night / AM rush / midday / PM rush / evening).
//!
//! Each period's error is evaluated with the seed set active there.

use bench::{f3, presets, Table};
use crowdspeed::eval::Method;
use crowdspeed::prelude::*;
use crowdspeed::seed::temporal::{standard_periods, TemporalSeedPlan};

fn main() {
    let ds = if bench::quick_mode() {
        presets::quick()
    } else {
        presets::metro()
    };
    let stats = HistoryStats::compute(&ds.history);
    let corr_cfg = CorrelationConfig::default();
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_cfg);
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let k = (ds.graph.num_roads() / 10).max(5);

    let static_seeds = lazy_greedy(&influence, k).seeds;
    let plan = TemporalSeedPlan::select(
        &ds.graph,
        &ds.history,
        &stats,
        &corr_cfg,
        &InfluenceConfig::default(),
        standard_periods(ds.clock.slots_per_day),
        k,
    );

    println!(
        "E12: static vs per-period seeds on {} (K = {k} per slot; plan uses {} distinct roads)",
        ds.name,
        plan.all_roads().len()
    );
    let mut t = Table::new(&[
        "period",
        "static mape",
        "temporal mape",
        "static tacc",
        "temporal tacc",
    ]);

    let method = Method::TwoStep(EstimatorConfig::default());
    let mut static_total = 0.0;
    let mut temporal_total = 0.0;
    for (i, period) in plan.periods().iter().enumerate() {
        // Thin each period to a handful of representative slots to keep
        // the sweep tractable.
        let step = (period.slots.len() / 4).max(1);
        let slots: Vec<usize> = period.slots.iter().copied().step_by(step).collect();
        let cfg = EvalConfig {
            slots,
            correlation: corr_cfg.clone(),
            ..EvalConfig::default()
        };
        let s = evaluate(&ds, &static_seeds, &method, &cfg);
        let p = evaluate(&ds, plan.period_seeds(i), &method, &cfg);
        static_total += s.error.mape;
        temporal_total += p.error.mape;
        t.row(&[
            period.label.to_string(),
            f3(s.error.mape),
            f3(p.error.mape),
            f3(s.trend_accuracy),
            f3(p.trend_accuracy),
        ]);
    }
    let n = plan.periods().len() as f64;
    t.row(&[
        "mean".to_string(),
        f3(static_total / n),
        f3(temporal_total / n),
        "-".to_string(),
        "-".to_string(),
    ]);
    t.print();
}
