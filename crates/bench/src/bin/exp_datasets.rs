//! Experiment E1 — dataset statistics (paper's Table 1).
//!
//! Prints the statistics row of each synthetic evaluation dataset:
//! roads, adjacencies, class mix, slots, days, probe coverage, mean
//! speed.

use bench::{presets, Table};

fn main() {
    let datasets = if bench::quick_mode() {
        vec![presets::quick()]
    } else {
        vec![presets::metro(), presets::grid()]
    };

    let mut t = Table::new(&[
        "dataset",
        "roads",
        "adjacencies",
        "avg-degree",
        "highway",
        "arterial",
        "collector",
        "local",
        "slots/day",
        "train-days",
        "test-days",
        "probe-coverage",
        "mean-kmh",
    ]);
    for ds in &datasets {
        let s = ds.stats();
        t.row(&[
            s.name.to_string(),
            s.roads.to_string(),
            s.adjacencies.to_string(),
            format!("{:.2}", s.avg_degree),
            s.class_counts[0].to_string(),
            s.class_counts[1].to_string(),
            s.class_counts[2].to_string(),
            s.class_counts[3].to_string(),
            s.slots_per_day.to_string(),
            s.training_days.to_string(),
            s.test_days.to_string(),
            format!("{:.3}", s.observed_fraction),
            format!("{:.1}", s.mean_speed_kmh),
        ]);
    }
    println!("E1: dataset statistics (paper Table 1)");
    t.print();
}
