//! Experiment E14 — sharded serving throughput vs shard count.
//!
//! Boots the scatter-gather router over fleets of 2 and 4 in-process
//! shard workers on the large city and drives a road-locality workload
//! (each request asks for one shard's owned roads, round-robin across
//! shards) through the full wire stack, against an unsharded daemon
//! serving the *identical* requests. On a single core the win comes
//! from per-request work reduction, not parallelism: a shard worker
//! answers a road-subset `ESTIMATE` from its masked model (~1/N of the
//! city's components), where the unsharded daemon must run full-city
//! inference and then subset the reply.
//!
//! Replies are asserted byte-identical through both deployments
//! *before* any timing — a fast wrong answer is not a result. The
//! model is trained once and every process resumes from the snapshot,
//! so all daemons provably serve the same epoch. Results go to
//! `BENCH_serve.json` for CI artifacts and trend tracking.

use bench::{f3, Table};
use crowdspeed::prelude::*;
use crowdspeed_server::json::Json;
use crowdspeed_server::{
    dataset_plan, Client, ClientConfig, Daemon, DaemonConfig, DaemonHandle, Router, RouterConfig,
    ShardSpec, TrainInputs,
};
use roadnet::RoadId;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use trafficsim::dataset::Dataset;

struct Run {
    shards: usize,
    requests: usize,
    filter_roads_mean: f64,
    single_rps: f64,
    router_rps: f64,
    speedup: f64,
    router_p50_us: f64,
    router_p99_us: f64,
}

fn client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_secs(5)),
        request_timeout: Some(Duration::from_secs(60)),
        write_timeout: Some(Duration::from_secs(60)),
        retries: 3,
        backoff_base: Duration::from_millis(5),
        ..ClientConfig::default()
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn main() {
    let quick = bench::quick_mode();
    let ds = if quick {
        bench::presets::quick()
    } else {
        bench::presets::large()
    };
    // The quick city's default-threshold correlation graph is one
    // giant component (atomic to the planner), so tighten it there;
    // the large city is multi-component at the default already.
    let corr_config = if quick {
        CorrelationConfig {
            min_cotrend: 0.8,
            min_co_observations: 6,
            ..CorrelationConfig::default()
        }
    } else {
        CorrelationConfig::default()
    };
    let num_roads = ds.graph.num_roads();
    let k = if quick { 12 } else { 160 };
    let stride = (num_roads / k).max(1);
    let seeds: Vec<RoadId> = (0..k).map(|i| RoadId((i * stride) as u32)).collect();
    let shard_counts: Vec<usize> = if quick { vec![2] } else { vec![2, 4] };
    let requests = if quick { 24 } else { 64 };

    let snapshot_dir =
        std::env::temp_dir().join(format!("crowdspeed-e14-snapshots-{}", std::process::id()));
    std::fs::create_dir_all(&snapshot_dir).expect("snapshot dir");

    let inputs = |ds: &Dataset| TrainInputs {
        graph: ds.graph.clone(),
        history: ds.history.clone(),
        seeds: seeds.clone(),
        corr_config: corr_config.clone(),
        config: EstimatorConfig::default(),
    };
    let config_with = |shard: Option<ShardSpec>, dir: &PathBuf| DaemonConfig {
        snapshot_dir: Some(dir.clone()),
        shard,
        ..DaemonConfig::default()
    };

    // Train exactly once; everything after resumes from this snapshot
    // in milliseconds, so the bench measures serving, never training.
    println!(
        "E14: training {} ({num_roads} roads, k={k}) once for the shared snapshot...",
        ds.name
    );
    let (_, train_ms) = bench::timed(|| {
        let warm = Daemon::spawn_from(inputs(&ds), config_with(None, &snapshot_dir))
            .expect("initial training daemon");
        warm.join();
    });
    println!("trained + snapshotted in {} ms", f3(train_ms));

    let single = Daemon::spawn_from(inputs(&ds), config_with(None, &snapshot_dir))
        .expect("baseline daemon resumes");
    let mut via_single = Client::connect_with(single.addr(), client_config()).expect("client");

    let truth = &ds.test_days[0];
    let slots = ds.clock.slots_per_day;
    let obs_for = |slot: usize| -> Vec<(u32, f64)> {
        seeds.iter().map(|&s| (s.0, truth.speed(slot, s))).collect()
    };

    println!(
        "E14: sharded serving throughput, road-locality workload ({} roads)",
        num_roads
    );
    let mut table = Table::new(&[
        "shards",
        "reqs",
        "roads/req",
        "single-rps",
        "router-rps",
        "speedup",
        "p50-us",
        "p99-us",
    ]);
    let mut runs: Vec<Run> = Vec::new();
    let mut equivalence_ok = true;

    for &n in &shard_counts {
        let plan = dataset_plan(&ds.graph, &ds.history, &corr_config, n).expect("shard plan");
        let workers: Vec<DaemonHandle> = (0..n)
            .map(|i| {
                Daemon::spawn_from(
                    inputs(&ds),
                    config_with(
                        Some(ShardSpec {
                            index: i,
                            plan: plan.clone(),
                        }),
                        &snapshot_dir,
                    ),
                )
                .expect("shard worker resumes")
            })
            .collect();
        let shard_addrs = workers.iter().map(|w| w.addr().to_string()).collect();
        let router = Router::spawn(RouterConfig::new(
            "127.0.0.1:0".to_string(),
            shard_addrs,
            plan.clone(),
        ))
        .expect("router spawns");
        let mut via_router = Client::connect_with(router.addr(), client_config()).expect("client");

        // Equivalence gate: a full-width scatter-gathered estimate must
        // be byte-identical to the unsharded daemon before any timing.
        for slot in [0, slots / 2] {
            let a = via_router
                .estimate(slot, obs_for(slot), None)
                .expect("router estimate");
            let b = via_single
                .estimate(slot, obs_for(slot), None)
                .expect("single estimate");
            let same = a.speeds == b.speeds && a.p_up == b.p_up && a.trends == b.trends;
            assert!(
                same,
                "shards={n} slot={slot}: router must equal single daemon bitwise"
            );
            equivalence_ok &= same;
        }

        // The workload: request s asks for shard (s mod n)'s owned
        // roads — a region query with shard locality.
        let filters: Vec<Vec<u32>> = (0..n)
            .map(|s| plan.owned_roads(s).iter().map(|r| r.0).collect())
            .collect();
        let filter_roads_mean =
            filters.iter().map(Vec::len).sum::<usize>() as f64 / filters.len() as f64;
        let request_at = |j: usize| -> (usize, &Vec<u32>) { ((j * 7) % slots, &filters[j % n]) };

        // Warm both paths once per shard (connections, scratch).
        for j in 0..n {
            let (slot, filter) = request_at(j);
            via_router
                .estimate_roads(slot, obs_for(slot), None, Some(filter.clone()))
                .expect("router warmup");
            via_single
                .estimate_roads(slot, obs_for(slot), None, Some(filter.clone()))
                .expect("single warmup");
        }

        let mut latencies_us: Vec<f64> = Vec::with_capacity(requests);
        let router_wall = Instant::now();
        for j in 0..requests {
            let (slot, filter) = request_at(j);
            let t = Instant::now();
            let reply = via_router
                .estimate_roads(slot, obs_for(slot), None, Some(filter.clone()))
                .expect("router request");
            latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            assert!(reply.unavailable.is_empty(), "healthy fleet degraded");
        }
        let router_rps = requests as f64 / router_wall.elapsed().as_secs_f64();

        let single_wall = Instant::now();
        for j in 0..requests {
            let (slot, filter) = request_at(j);
            via_single
                .estimate_roads(slot, obs_for(slot), None, Some(filter.clone()))
                .expect("single request");
        }
        let single_rps = requests as f64 / single_wall.elapsed().as_secs_f64();

        latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let run = Run {
            shards: n,
            requests,
            filter_roads_mean,
            single_rps,
            router_rps,
            speedup: router_rps / single_rps,
            router_p50_us: percentile(&latencies_us, 0.50),
            router_p99_us: percentile(&latencies_us, 0.99),
        };
        table.row(&[
            run.shards.to_string(),
            run.requests.to_string(),
            f3(run.filter_roads_mean),
            f3(run.single_rps),
            f3(run.router_rps),
            f3(run.speedup),
            f3(run.router_p50_us),
            f3(run.router_p99_us),
        ]);
        runs.push(run);

        let mut shutdown_client = Client::connect(router.addr()).expect("shutdown client");
        shutdown_client.shutdown().expect("fleet shutdown");
        router.wait();
        for worker in workers {
            worker.wait();
        }
    }
    table.print();

    // Throughput floors from the experiment plan; the quick city is
    // too small for masked serving to amortise the router hop, so the
    // gate applies to the real dataset only.
    if !quick {
        for run in &runs {
            let floor = match run.shards {
                2 => 1.6,
                4 => 2.5,
                _ => 0.0,
            };
            assert!(
                run.speedup >= floor,
                "shards={}: speedup {} below the {floor}x floor",
                run.shards,
                f3(run.speedup)
            );
        }
    }

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("shard_scaling".into())),
        ("dataset".into(), Json::Str(ds.name.to_string())),
        ("roads".into(), Json::Num(num_roads as f64)),
        ("k".into(), Json::Num(k as f64)),
        ("quick".into(), Json::Bool(quick)),
        ("train_ms".into(), Json::Num(train_ms)),
        ("equivalence_ok".into(), Json::Bool(equivalence_ok)),
        (
            "runs".into(),
            Json::Arr(
                runs.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("shards".into(), Json::Num(r.shards as f64)),
                            ("requests".into(), Json::Num(r.requests as f64)),
                            ("filter_roads_mean".into(), Json::Num(r.filter_roads_mean)),
                            ("single_rps".into(), Json::Num(r.single_rps)),
                            ("router_rps".into(), Json::Num(r.router_rps)),
                            ("speedup".into(), Json::Num(r.speedup)),
                            ("router_p50_us".into(), Json::Num(r.router_p50_us)),
                            ("router_p99_us".into(), Json::Num(r.router_p99_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    // One JSON line per experiment in the shared results file:
    // replace our own previous line, preserve everyone else's.
    let mut lines: Vec<String> = std::fs::read_to_string("BENCH_serve.json")
        .map(|text| {
            text.lines()
                .filter(|l| !l.trim().is_empty())
                .filter(|l| !l.contains("\"experiment\":\"shard_scaling\""))
                .map(String::from)
                .collect()
        })
        .unwrap_or_default();
    lines.push(json.encode());
    std::fs::write("BENCH_serve.json", lines.join("\n") + "\n").expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    let mut client = Client::connect(single.addr()).expect("baseline shutdown client");
    client.shutdown().expect("baseline shutdown");
    single.wait();
    std::fs::remove_dir_all(&snapshot_dir).ok();
}
