//! Experiment E4 — trend-inference accuracy vs budget K.
//!
//! Isolates step 1: how often is the binary trend of a non-seed road
//! predicted correctly, as the seed budget grows, for each inference
//! engine (LBP, Gibbs, prior-only)?

use bench::{f3, presets, Table};
use crowdspeed::eval::Method;
use crowdspeed::prelude::*;
use graphmodel::gibbs::GibbsOptions;
use graphmodel::meanfield::MeanFieldOptions;

fn engines() -> Vec<(&'static str, TrendEngine)> {
    vec![
        ("lbp", TrendEngine::default()),
        (
            "gibbs",
            TrendEngine::Gibbs {
                options: GibbsOptions {
                    burn_in: 50,
                    samples: 300,
                },
                seed: 11,
            },
        ),
        (
            "mean-field",
            TrendEngine::MeanField(MeanFieldOptions::default()),
        ),
        ("prior-only", TrendEngine::PriorOnly),
    ]
}

fn main() {
    let ds = if bench::quick_mode() {
        presets::quick()
    } else {
        presets::metro()
    };
    let stats = HistoryStats::compute(&ds.history);
    let corr_cfg = CorrelationConfig::default();
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_cfg);
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let n = ds.graph.num_roads();

    println!("E4: trend accuracy vs seed budget on {} (n = {n})", ds.name);
    let eval_cfg = EvalConfig {
        slots: presets::representative_slots(ds.clock.slots_per_day),
        correlation: corr_cfg,
        ..EvalConfig::default()
    };

    let mut headers = vec!["K (% roads)".to_string()];
    headers.extend(engines().iter().map(|(name, _)| name.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    for frac in [0.02, 0.05, 0.10, 0.15, 0.20] {
        let k = ((n as f64 * frac) as usize).max(2);
        let seeds = lazy_greedy(&influence, k).seeds;
        let mut row = vec![format!("{k} ({:.0}%)", frac * 100.0)];
        for (_, engine) in engines() {
            let rep = evaluate(
                &ds,
                &seeds,
                &Method::TwoStep(EstimatorConfig {
                    engine,
                    ..EstimatorConfig::default()
                }),
                &eval_cfg,
            );
            row.push(f3(rep.trend_accuracy));
        }
        t.row(&row);
    }
    t.print();
    println!("(higher is better; prior-only shows the value of propagation)");
}
