//! Experiment E10 — ablation of the design choices flagged in
//! `DESIGN.md` §6.
//!
//! Disables one ingredient at a time:
//! * **no-trend-step** — step 1 replaced by historical priors
//!   (`TrendEngine::PriorOnly`);
//! * **no-regime-split** — one coefficient set instead of up/down;
//! * **class-pooling / global-pooling** — shallower HLM hierarchies;
//! * **1-hop influence** — seed coverage and HLM features restricted to
//!   direct correlation neighbours.

use bench::{f3, presets, Table};
use crowdspeed::eval::Method;
use crowdspeed::inference::hlm::{HlmConfig, Pooling};
use crowdspeed::prelude::*;

fn main() {
    let ds = if bench::quick_mode() {
        presets::quick()
    } else {
        presets::metro()
    };
    let stats = HistoryStats::compute(&ds.history);
    let corr_cfg = CorrelationConfig::default();
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_cfg);
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let k = (ds.graph.num_roads() / 10).max(5);
    let seeds = lazy_greedy(&influence, k).seeds;
    let eval_cfg = EvalConfig {
        slots: presets::representative_slots(ds.clock.slots_per_day),
        correlation: corr_cfg,
        ..EvalConfig::default()
    };

    let variants: Vec<(&str, EstimatorConfig)> = vec![
        ("full", EstimatorConfig::default()),
        (
            "no-trend-step",
            EstimatorConfig {
                engine: TrendEngine::PriorOnly,
                ..EstimatorConfig::default()
            },
        ),
        (
            "no-regime-split",
            EstimatorConfig {
                hlm: HlmConfig {
                    split_regimes: false,
                    ..HlmConfig::default()
                },
                ..EstimatorConfig::default()
            },
        ),
        (
            "class-pooling",
            EstimatorConfig {
                hlm: HlmConfig {
                    pooling: Pooling::ClassOnly,
                    ..HlmConfig::default()
                },
                ..EstimatorConfig::default()
            },
        ),
        (
            "global-pooling",
            EstimatorConfig {
                hlm: HlmConfig {
                    pooling: Pooling::GlobalOnly,
                    ..HlmConfig::default()
                },
                ..EstimatorConfig::default()
            },
        ),
        (
            "1-hop-influence",
            EstimatorConfig {
                hlm: HlmConfig {
                    influence: InfluenceConfig {
                        max_hops: 1,
                        ..InfluenceConfig::default()
                    },
                    ..HlmConfig::default()
                },
                ..EstimatorConfig::default()
            },
        ),
    ];

    println!(
        "E10: ablations on {} (K = {k}, seeds via lazy greedy)",
        ds.name
    );
    let mut t = Table::new(&["variant", "mape", "mae", "trend-acc"]);
    for (name, config) in variants {
        let rep = evaluate(&ds, &seeds, &Method::TwoStep(config), &eval_cfg);
        t.row(&[
            name.to_string(),
            f3(rep.error.mape),
            f3(rep.error.mae),
            f3(rep.trend_accuracy),
        ]);
    }

    // 1-hop also on the *selection* side: seeds chosen with 1-hop
    // influence, estimated with the full model.
    let one_hop = InfluenceModel::build(
        &corr,
        &InfluenceConfig {
            max_hops: 1,
            ..InfluenceConfig::default()
        },
    );
    let seeds_1hop = lazy_greedy(&one_hop, k).seeds;
    let rep = evaluate(
        &ds,
        &seeds_1hop,
        &Method::TwoStep(EstimatorConfig::default()),
        &eval_cfg,
    );
    t.row(&[
        "1-hop-selection".to_string(),
        f3(rep.error.mape),
        f3(rep.error.mae),
        f3(rep.trend_accuracy),
    ]);
    t.print();
}
