//! Experiment E10 — daemon serving throughput vs concurrency.
//!
//! Boots `crowdspeedd` in-process and drives it closed-loop from a
//! growing number of client connections, measuring end-to-end wire
//! throughput and latency (frame codec + admission queue + estimator,
//! the full serving stack a deployment would see). A final column
//! compares against the in-process `serve_batch` ceiling so the wire
//! overhead is visible rather than implied.

use bench::{f3, Table};
use crowdspeed::prelude::*;
use crowdspeed::serve::{serve_batch, EstimateRequest, ServeOptions};
use crowdspeed_server::{Client, ClientConfig, Daemon, DaemonConfig, TrainState};
use roadnet::RoadId;
use std::sync::Arc;
use std::time::{Duration, Instant};
use trafficsim::dataset::{metro_small, Dataset, DatasetParams};

fn dataset() -> Dataset {
    metro_small(&DatasetParams {
        training_days: 8,
        test_days: 1,
        ..DatasetParams::default()
    })
}

fn seeds() -> Vec<RoadId> {
    (0..12u32).map(|i| RoadId(i * 8)).collect()
}

fn main() {
    let quick = bench::quick_mode();
    let concurrencies: Vec<usize> = if quick {
        vec![1, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let requests_per_conn = if quick { 50 } else { 400 };

    let ds = dataset();
    let mut train = TrainState::new(
        ds.graph.clone(),
        &ds.history,
        seeds(),
        &CorrelationConfig::default(),
        EstimatorConfig::default(),
    );
    let reference = train.train().expect("estimator trains");
    let handle = Daemon::spawn(train, DaemonConfig::default()).expect("daemon boots");
    let addr = handle.addr();

    let truth = &ds.test_days[0];
    let slots = ds.clock.slots_per_day;
    let obs_for = |slot: usize| -> Vec<(u32, f64)> {
        seeds()
            .iter()
            .map(|&s| (s.0, truth.speed(slot, s)))
            .collect()
    };
    let all_obs: Arc<Vec<Vec<(u32, f64)>>> = Arc::new((0..slots).map(obs_for).collect());

    // Bounded everything: a wedged daemon fails the bench in seconds
    // instead of hanging it, and transient Overloaded answers are
    // retried with backoff rather than crashing a client thread.
    let client_config = || ClientConfig {
        connect_timeout: Some(Duration::from_secs(5)),
        request_timeout: Some(Duration::from_secs(10)),
        write_timeout: Some(Duration::from_secs(10)),
        retries: 3,
        backoff_base: Duration::from_millis(5),
        ..ClientConfig::default()
    };

    println!("E10: daemon throughput vs closed-loop client connections (metro-small)");
    let mut t = Table::new(&[
        "conns",
        "requests",
        "wall-ms",
        "req/s",
        "mean-us",
        "overloaded",
    ]);

    for &conns in &concurrencies {
        let started = Instant::now();
        let threads: Vec<_> = (0..conns)
            .map(|c| {
                let all_obs = Arc::clone(&all_obs);
                let config = client_config();
                std::thread::spawn(move || {
                    let mut client = Client::connect_with(addr, config).expect("client connects");
                    let mut total_us = 0u64;
                    let mut served = 0u64;
                    for i in 0..requests_per_conn {
                        let slot = (c + i) % all_obs.len();
                        let t0 = Instant::now();
                        client
                            .estimate(slot, all_obs[slot].clone(), None)
                            .expect("estimate succeeds");
                        total_us += t0.elapsed().as_micros() as u64;
                        served += 1;
                    }
                    (served, total_us)
                })
            })
            .collect();
        let mut served = 0u64;
        let mut total_us = 0u64;
        for thread in threads {
            let (s, us) = thread.join().expect("client thread");
            served += s;
            total_us += us;
        }
        let wall = started.elapsed();
        let mut stats_client = Client::connect_with(addr, client_config()).expect("stats client");
        let stats = stats_client.stats().expect("stats");
        t.row(&[
            conns.to_string(),
            served.to_string(),
            f3(wall.as_secs_f64() * 1e3),
            f3(served as f64 / wall.as_secs_f64()),
            f3(total_us as f64 / served.max(1) as f64),
            stats.rejected_overload.to_string(),
        ]);
    }
    t.print();

    // The in-process ceiling: the same request mix through serve_batch
    // on as many threads as the daemon has workers.
    let requests: Vec<EstimateRequest> = (0..slots)
        .map(|slot| EstimateRequest {
            slot_of_day: slot,
            observations: all_obs[slot].iter().map(|&(r, v)| (RoadId(r), v)).collect(),
        })
        .collect();
    let out = serve_batch(&reference, &requests, &ServeOptions { threads: 4 });
    println!(
        "in-process ceiling: {} req/s (serve_batch, 4 threads, no wire)",
        f3(out.metrics.throughput())
    );

    let mut shutdown_client = Client::connect(addr).expect("shutdown client");
    shutdown_client.shutdown().expect("clean shutdown");
    handle.join();
}
