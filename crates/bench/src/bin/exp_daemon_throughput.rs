//! Experiment E10 — daemon serving throughput, codecs, and connection
//! scalability.
//!
//! Boots `crowdspeedd` in-process and measures the full serving stack
//! (frame codec + event loop + admission queue + estimator) three
//! ways:
//!
//! 1. closed-loop throughput vs concurrent client connections (the
//!    original E10 table), against the in-process `serve_batch`
//!    ceiling;
//! 2. a codec face-off — single `ESTIMATE`s over JSON vs binary, and
//!    `ESTIMATE_BATCH` over both, so the batching gain over the JSON
//!    single-request baseline is a measured number;
//! 3. an idle-connection sweep — park 64 / 1k / 9k mostly-idle
//!    keep-alive connections (the bench holds BOTH ends of every
//!    connection, so the process fd limit caps the sweep at ~9k) and
//!    measure `ESTIMATE` latency percentiles past the parked crowd.
//!    The pre-event-loop daemon pinned one OS thread per connection
//!    and shipped with a 1024-connection default cap; the sweep's
//!    sustained count over that cap is the scalability ratio.
//!
//! Results land in `BENCH_serve.json` as one JSON line per experiment;
//! other experiments' lines are preserved.

use bench::{f3, Table};
use crowdspeed::prelude::*;
use crowdspeed::serve::{serve_batch, EstimateRequest, ServeOptions};
use crowdspeed_server::evloop::raise_nofile_limit;
use crowdspeed_server::json::Json;
use crowdspeed_server::{
    BatchItem, BatchOutcome, Client, ClientConfig, Codec, Daemon, DaemonConfig, TrainState,
};
use roadnet::RoadId;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use trafficsim::dataset::{metro_small, Dataset, DatasetParams};

/// The default connection cap of the retired thread-per-connection
/// daemon: the baseline for the idle-connection scalability ratio.
const THREAD_MODEL_CAP: usize = 1024;

fn dataset() -> Dataset {
    metro_small(&DatasetParams {
        training_days: 8,
        test_days: 1,
        ..DatasetParams::default()
    })
}

fn seeds() -> Vec<RoadId> {
    (0..12u32).map(|i| RoadId(i * 8)).collect()
}

fn client_config(codec: Codec) -> ClientConfig {
    // Bounded everything: a wedged daemon fails the bench in seconds
    // instead of hanging it, and transient Overloaded answers are
    // retried with backoff rather than crashing a client thread.
    ClientConfig {
        connect_timeout: Some(Duration::from_secs(5)),
        request_timeout: Some(Duration::from_secs(10)),
        write_timeout: Some(Duration::from_secs(10)),
        retries: 3,
        backoff_base: Duration::from_millis(5),
        codec,
        ..ClientConfig::default()
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx] as f64
}

struct CodecRun {
    codec: &'static str,
    single_rps: f64,
    batch_items_per_s: f64,
}

struct IdleRun {
    conns: usize,
    codec: &'static str,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

/// Merges this experiment's line into the shared JSONL results file,
/// preserving every other experiment's line.
fn merge_results_line(path: &str, experiment: &str, line: String) {
    let mut lines: Vec<String> = std::fs::read_to_string(path)
        .map(|text| {
            text.lines()
                .filter(|l| !l.trim().is_empty())
                .filter(|l| !l.contains(&format!("\"experiment\":\"{experiment}\"")))
                .map(String::from)
                .collect()
        })
        .unwrap_or_default();
    lines.push(line);
    std::fs::write(path, lines.join("\n") + "\n").expect("write BENCH_serve.json");
}

fn main() {
    let quick = bench::quick_mode();
    let concurrencies: Vec<usize> = if quick {
        vec![1, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let requests_per_conn = if quick { 50 } else { 400 };
    // Both ends of every idle connection live in this process: two fds
    // per parked connection, so a 20k fd limit sustains ~9k.
    let idle_sweeps: Vec<usize> = if quick {
        vec![64, 256]
    } else {
        vec![64, 1_000, 9_000]
    };
    let probe_requests = if quick { 50 } else { 300 };
    let batch_size = 24;

    match raise_nofile_limit(65_536) {
        Ok(limit) => println!("fd limit: {limit}"),
        Err(e) => println!("fd limit unchanged ({e})"),
    }

    let ds = dataset();
    let mut train = TrainState::new(
        ds.graph.clone(),
        &ds.history,
        seeds(),
        &CorrelationConfig::default(),
        EstimatorConfig::default(),
    );
    let reference = train.train().expect("estimator trains");
    let handle = Daemon::spawn(
        train,
        DaemonConfig {
            max_connections: 19_000,
            ..DaemonConfig::default()
        },
    )
    .expect("daemon boots");
    let addr = handle.addr();

    let truth = &ds.test_days[0];
    let slots = ds.clock.slots_per_day;
    let obs_for = |slot: usize| -> Vec<(u32, f64)> {
        seeds()
            .iter()
            .map(|&s| (s.0, truth.speed(slot, s)))
            .collect()
    };
    let all_obs: Arc<Vec<Vec<(u32, f64)>>> = Arc::new((0..slots).map(obs_for).collect());

    // ── 1. closed-loop throughput vs concurrency (JSON codec) ───────
    println!("E10: daemon throughput vs closed-loop client connections (metro-small)");
    let mut t = Table::new(&[
        "conns",
        "requests",
        "wall-ms",
        "req/s",
        "mean-us",
        "overloaded",
    ]);
    for &conns in &concurrencies {
        let started = Instant::now();
        let threads: Vec<_> = (0..conns)
            .map(|c| {
                let all_obs = Arc::clone(&all_obs);
                let config = client_config(Codec::Json);
                std::thread::spawn(move || {
                    let mut client = Client::connect_with(addr, config).expect("client connects");
                    let mut total_us = 0u64;
                    let mut served = 0u64;
                    for i in 0..requests_per_conn {
                        let slot = (c + i) % all_obs.len();
                        let t0 = Instant::now();
                        client
                            .estimate(slot, all_obs[slot].clone(), None)
                            .expect("estimate succeeds");
                        total_us += t0.elapsed().as_micros() as u64;
                        served += 1;
                    }
                    (served, total_us)
                })
            })
            .collect();
        let mut served = 0u64;
        let mut total_us = 0u64;
        for thread in threads {
            let (s, us) = thread.join().expect("client thread");
            served += s;
            total_us += us;
        }
        let wall = started.elapsed();
        let mut stats_client =
            Client::connect_with(addr, client_config(Codec::Json)).expect("stats client");
        let stats = stats_client.stats().expect("stats");
        t.row(&[
            conns.to_string(),
            served.to_string(),
            f3(wall.as_secs_f64() * 1e3),
            f3(served as f64 / wall.as_secs_f64()),
            f3(total_us as f64 / served.max(1) as f64),
            stats.rejected_overload.to_string(),
        ]);
    }
    t.print();

    // The in-process ceiling: the same request mix through serve_batch
    // on as many threads as the daemon has workers.
    let requests: Vec<EstimateRequest> = (0..slots)
        .map(|slot| EstimateRequest {
            slot_of_day: slot,
            observations: all_obs[slot].iter().map(|&(r, v)| (RoadId(r), v)).collect(),
        })
        .collect();
    let out = serve_batch(&reference, &requests, &ServeOptions { threads: 4 });
    println!(
        "in-process ceiling: {} req/s (serve_batch, 4 threads, no wire)",
        f3(out.metrics.throughput())
    );

    // ── 2. codec face-off: singles and batches over JSON and binary ─
    println!("codec face-off: single ESTIMATE vs ESTIMATE_BATCH ({batch_size} items/frame)");
    let mut codec_table = Table::new(&["codec", "single-req/s", "batch-items/s", "batch-gain"]);
    let face_off_requests = requests_per_conn * 2;
    let mut codec_runs: Vec<CodecRun> = Vec::new();
    for (codec, name) in [(Codec::Json, "json"), (Codec::Binary, "binary")] {
        let mut client =
            Client::connect_with(addr, client_config(codec)).expect("codec client connects");
        // Singles, closed loop on one connection.
        let started = Instant::now();
        for i in 0..face_off_requests {
            let slot = i % all_obs.len();
            client
                .estimate(slot, all_obs[slot].clone(), None)
                .expect("single estimate");
        }
        let single_rps = face_off_requests as f64 / started.elapsed().as_secs_f64();

        // The same total item count packed into batch frames.
        let started = Instant::now();
        let mut items_done = 0usize;
        while items_done < face_off_requests {
            let n = batch_size.min(face_off_requests - items_done);
            let items: Vec<BatchItem> = (0..n)
                .map(|j| {
                    let slot = (items_done + j) % all_obs.len();
                    BatchItem {
                        slot_of_day: slot,
                        observations: all_obs[slot].clone(),
                        roads: None,
                    }
                })
                .collect();
            let outcomes = client.estimate_batch(items, None).expect("batch estimate");
            assert!(
                outcomes
                    .iter()
                    .all(|o| matches!(o, BatchOutcome::Estimate(_))),
                "batched items all succeed"
            );
            items_done += n;
        }
        let batch_items_per_s = face_off_requests as f64 / started.elapsed().as_secs_f64();
        codec_runs.push(CodecRun {
            codec: name,
            single_rps,
            batch_items_per_s,
        });
    }
    let json_single_rps = codec_runs[0].single_rps;
    for run in &codec_runs {
        codec_table.row(&[
            run.codec.to_string(),
            f3(run.single_rps),
            f3(run.batch_items_per_s),
            f3(run.batch_items_per_s / json_single_rps),
        ]);
    }
    codec_table.print();
    let batched_gain = codec_runs
        .iter()
        .map(|r| r.batch_items_per_s / json_single_rps)
        .fold(f64::NAN, f64::max);
    assert!(
        batched_gain > 1.0,
        "batched ESTIMATE must beat the JSON single-request baseline, got {}x",
        f3(batched_gain)
    );

    // ── 3. idle-connection sweep ────────────────────────────────────
    println!("idle-connection sweep: ESTIMATE latency past a parked keep-alive crowd");
    let mut idle_table = Table::new(&["idle-conns", "codec", "p50-us", "p99-us", "p999-us"]);
    let mut idle_runs: Vec<IdleRun> = Vec::new();
    let mut idle_sustained = 0usize;
    for &conns in &idle_sweeps {
        let mut parked: Vec<TcpStream> = Vec::with_capacity(conns);
        for i in 0..conns {
            parked.push(
                TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle conn {i} failed: {e}")),
            );
        }
        // Wait until the daemon has registered the whole crowd.
        let mut gauge_client =
            Client::connect_with(addr, client_config(Codec::Json)).expect("gauge client");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = gauge_client.stats().expect("stats");
            if stats.open_connections >= conns as u64 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "daemon never registered {conns} idle connections (gauge {})",
                stats.open_connections
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        idle_sustained = idle_sustained.max(conns);

        for (codec, name) in [(Codec::Json, "json"), (Codec::Binary, "binary")] {
            let mut client =
                Client::connect_with(addr, client_config(codec)).expect("probe client");
            let mut latencies_us: Vec<u64> = Vec::with_capacity(probe_requests);
            for i in 0..probe_requests {
                let slot = i % all_obs.len();
                let t0 = Instant::now();
                client
                    .estimate(slot, all_obs[slot].clone(), None)
                    .expect("estimate past the idle crowd");
                latencies_us.push(t0.elapsed().as_micros() as u64);
            }
            latencies_us.sort_unstable();
            let run = IdleRun {
                conns,
                codec: name,
                p50_us: percentile(&latencies_us, 0.50),
                p99_us: percentile(&latencies_us, 0.99),
                p999_us: percentile(&latencies_us, 0.999),
            };
            idle_table.row(&[
                conns.to_string(),
                name.to_string(),
                f3(run.p50_us),
                f3(run.p99_us),
                f3(run.p999_us),
            ]);
            idle_runs.push(run);
        }

        // Drain before the next sweep so the crowds don't stack.
        drop(parked);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = gauge_client.stats().expect("stats");
            if stats.open_connections <= 4 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "daemon never drained the idle crowd (gauge {})",
                stats.open_connections
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    idle_table.print();
    let idle_conn_ratio = idle_sustained as f64 / THREAD_MODEL_CAP as f64;
    println!(
        "sustained {idle_sustained} idle connections ({}x the {THREAD_MODEL_CAP}-connection thread-model cap)",
        f3(idle_conn_ratio)
    );
    if !quick {
        assert!(
            idle_conn_ratio >= 5.0,
            "the event loop must sustain >=5x the thread model's connection cap"
        );
    }

    // ── results ─────────────────────────────────────────────────────
    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("daemon_throughput".into())),
        ("dataset".into(), Json::Str(ds.name.to_string())),
        ("quick".into(), Json::Bool(quick)),
        (
            "idle_conns_sustained".into(),
            Json::Num(idle_sustained as f64),
        ),
        (
            "thread_model_cap".into(),
            Json::Num(THREAD_MODEL_CAP as f64),
        ),
        ("idle_conn_ratio".into(), Json::Num(idle_conn_ratio)),
        ("batched_gain_over_json".into(), Json::Num(batched_gain)),
        (
            "codecs".into(),
            Json::Arr(
                codec_runs
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("codec".into(), Json::Str(r.codec.into())),
                            ("single_rps".into(), Json::Num(r.single_rps)),
                            ("batch_items_per_s".into(), Json::Num(r.batch_items_per_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "idle_sweeps".into(),
            Json::Arr(
                idle_runs
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("conns".into(), Json::Num(r.conns as f64)),
                            ("codec".into(), Json::Str(r.codec.into())),
                            ("p50_us".into(), Json::Num(r.p50_us)),
                            ("p99_us".into(), Json::Num(r.p99_us)),
                            ("p999_us".into(), Json::Num(r.p999_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    merge_results_line("BENCH_serve.json", "daemon_throughput", json.encode());
    println!("wrote BENCH_serve.json");

    let mut shutdown_client = Client::connect(addr).expect("shutdown client");
    shutdown_client.shutdown().expect("clean shutdown");
    handle.join();
}
