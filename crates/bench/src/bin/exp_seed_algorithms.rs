//! Experiment E2 — seed-selection algorithm comparison (paper's
//! seed-selection table).
//!
//! For a fixed budget (10 % of roads) on the metro dataset, compares
//! every selector on: objective value F(S), selection wall time, gain
//! evaluations, and downstream estimation error when the two-step
//! estimator runs on the selected seeds.

use bench::{f3, presets, timed, Table};
use crowdspeed::prelude::*;
use roadnet::RoadId;

fn main() {
    let ds = if bench::quick_mode() {
        presets::quick()
    } else {
        presets::metro()
    };
    let stats = HistoryStats::compute(&ds.history);
    let corr_cfg = CorrelationConfig::default();
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_cfg);
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let obj = SeedObjective::new(&influence);
    let k = (ds.graph.num_roads() / 10).max(5);

    println!(
        "E2: seed-selection algorithms on {} (n = {}, K = {k}, corr edges = {})",
        ds.name,
        ds.graph.num_roads(),
        corr.num_edges()
    );

    let eval_cfg = EvalConfig {
        slots: presets::representative_slots(ds.clock.slots_per_day),
        correlation: corr_cfg,
        ..EvalConfig::default()
    };

    let mut t = Table::new(&[
        "algorithm",
        "objective",
        "select-ms",
        "gain-evals",
        "mape",
        "trend-acc",
    ]);
    let mut run = |name: &str, seeds: Vec<RoadId>, ms: f64, evals: Option<u64>| {
        let objective = obj.value(&seeds);
        let rep = evaluate(
            &ds,
            &seeds,
            &crowdspeed::eval::Method::TwoStep(EstimatorConfig::default()),
            &eval_cfg,
        );
        t.row(&[
            name.to_string(),
            f3(objective),
            f3(ms),
            evals.map_or("-".into(), |e| e.to_string()),
            f3(rep.error.mape),
            f3(rep.trend_accuracy),
        ]);
    };

    let (res, ms) = timed(|| greedy(&influence, k));
    run("greedy", res.seeds, ms, Some(res.evaluations));
    let (res, ms) = timed(|| lazy_greedy(&influence, k));
    run("lazy-greedy", res.seeds, ms, Some(res.evaluations));
    let (res, ms) = timed(|| partition_greedy(&corr, &InfluenceConfig::default(), k, 8));
    run("partition-8", res.seeds, ms, Some(res.evaluations));
    let (seeds, ms) = timed(|| random_seeds(ds.graph.num_roads(), k, 42));
    run("random", seeds, ms, None);
    let (seeds, ms) = timed(|| top_degree(&corr, k));
    run("top-degree", seeds, ms, None);
    let (seeds, ms) = timed(|| top_variance(&ds.history, &stats, k));
    run("top-variance", seeds, ms, None);
    let (seeds, ms) = timed(|| pagerank_seeds(&corr, k, 0.85, 50));
    run("pagerank", seeds, ms, None);
    let (seeds, ms) = timed(|| k_center(&corr, k));
    run("k-center", seeds, ms, None);

    t.print();
}
