//! Experiment E11 — parallel training scaling across thread counts.
//!
//! Times every stage of the training pipeline (correlation build,
//! influence model, CELF seed selection, end-to-end estimator training,
//! and a daemon-style `INGEST_DAY` retrain through [`TrainState`]) at
//! `--train-threads` 1, 2, 4, 8 (1, 2 under `--quick`). Before any
//! timing is reported, every thread count's outputs are asserted
//! **bit-identical** to the serial run — the parallel pipeline is a
//! pure wall-clock optimisation, never a numerics change. Results are
//! written to `BENCH_train.json` for CI artifacts and trend tracking.

use bench::{f3, timed, Table};
use crowdspeed::prelude::*;
use crowdspeed::seed::lazy_greedy::lazy_greedy_threads;
use crowdspeed_server::json::Json;
use crowdspeed_server::TrainState;
use roadnet::RoadId;
use trafficsim::dataset::Dataset;

/// All stage timings for one thread count, in milliseconds.
struct Run {
    threads: usize,
    corr_ms: f64,
    influence_ms: f64,
    select_ms: f64,
    train_ms: f64,
    retrain_ms: f64,
}

impl Run {
    fn total_ms(&self) -> f64 {
        self.corr_ms + self.influence_ms + self.select_ms + self.train_ms + self.retrain_ms
    }
}

fn corr_config() -> CorrelationConfig {
    CorrelationConfig {
        min_cotrend: 0.6,
        min_co_observations: 6,
        ..CorrelationConfig::default()
    }
}

/// Runs the full pipeline at one thread count, asserting bit-identity
/// of every stage against the serial reference when one is given.
fn run_at(
    ds: &Dataset,
    stats: &HistoryStats,
    k: usize,
    threads: usize,
    reference: Option<&(CorrelationGraph, Vec<RoadId>, Vec<f64>)>,
) -> (Run, (CorrelationGraph, Vec<RoadId>, Vec<f64>)) {
    let (corr, corr_ms) = timed(|| {
        CorrelationGraph::build_threaded(&ds.graph, &ds.history, stats, &corr_config(), threads)
    });
    let (influence, influence_ms) =
        timed(|| InfluenceModel::build_threaded(&corr, &InfluenceConfig::default(), threads));
    let (selection, select_ms) = timed(|| lazy_greedy_threads(&influence, k, threads));
    let seeds = selection.seeds.clone();
    let config = EstimatorConfig {
        train_threads: threads,
        ..EstimatorConfig::default()
    };
    let (est, train_ms) = timed(|| {
        TrafficEstimator::train(&ds.graph, &ds.history, stats, &corr, &seeds, &config)
            .expect("estimator trains")
    });

    // Daemon-style retrain: bootstrap TrainState, ingest one observed
    // day, and retrain exactly as the INGEST_DAY handler does.
    let mut state = TrainState::new(
        ds.graph.clone(),
        &ds.history,
        seeds.clone(),
        &corr_config(),
        config,
    );
    state
        .ingest_day(ds.test_days[0].clone())
        .expect("ingest day");
    let (retrained, retrain_ms) = timed(|| state.train().expect("retrain succeeds"));

    // The smoke-check payload: serving outputs at one rush-hour slot.
    let slot = 8.min(ds.clock.slots_per_day - 1);
    let truth = &ds.test_days[0];
    let obs: Vec<(RoadId, f64)> = seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
    let speeds = est.estimate(slot, &obs).speeds;
    let retrain_speeds = retrained.estimate(slot, &obs).speeds;

    if let Some((ref_corr, ref_seeds, ref_speeds)) = reference {
        assert_eq!(
            corr.num_edges(),
            ref_corr.num_edges(),
            "threads={threads}: correlation edge count diverged"
        );
        for (a, b) in corr.edges().iter().zip(ref_corr.edges()) {
            assert!(
                (a.a, a.b, a.support) == (b.a, b.b, b.support)
                    && a.cotrend.to_bits() == b.cotrend.to_bits(),
                "threads={threads}: correlation edge ({}, {}) diverged",
                a.a,
                a.b
            );
        }
        assert_eq!(&seeds, ref_seeds, "threads={threads}: seed set diverged");
        for (r, (a, b)) in speeds.iter().zip(ref_speeds).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "threads={threads}, road {r}: speed {a} != serial {b}"
            );
        }
    }
    // The retrained model must serve deterministically too (same state,
    // same outputs regardless of thread count) — compare against the
    // freshly trained model only for finiteness, the cross-thread check
    // runs through the reference tuple above.
    assert!(retrain_speeds.iter().all(|v| v.is_finite()));

    (
        Run {
            threads,
            corr_ms,
            influence_ms,
            select_ms,
            train_ms,
            retrain_ms,
        },
        (corr, seeds, speeds),
    )
}

fn main() {
    let quick = bench::quick_mode();
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let ds = if quick {
        bench::presets::quick()
    } else {
        bench::presets::metro()
    };
    let k = (ds.graph.num_roads() / 8).max(4);
    let stats = HistoryStats::compute(&ds.history);

    println!(
        "E11: training-pipeline scaling on {} ({} roads, {} training days, K = {k})",
        ds.name,
        ds.graph.num_roads(),
        ds.history.num_days()
    );

    let mut runs: Vec<Run> = Vec::new();
    let mut reference: Option<(CorrelationGraph, Vec<RoadId>, Vec<f64>)> = None;
    for &threads in thread_counts {
        let (run, outputs) = run_at(&ds, &stats, k, threads, reference.as_ref());
        runs.push(run);
        if reference.is_none() {
            reference = Some(outputs);
        }
    }
    println!("bit-identity: all thread counts match the serial model exactly");

    let serial_total = runs[0].total_ms();
    let mut t = Table::new(&[
        "threads",
        "corr-ms",
        "influence-ms",
        "select-ms",
        "train-ms",
        "retrain-ms",
        "total-ms",
        "speedup",
    ]);
    for run in &runs {
        t.row(&[
            run.threads.to_string(),
            f3(run.corr_ms),
            f3(run.influence_ms),
            f3(run.select_ms),
            f3(run.train_ms),
            f3(run.retrain_ms),
            f3(run.total_ms()),
            f3(serial_total / run.total_ms()),
        ]);
    }
    t.print();

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("train_scaling".into())),
        ("dataset".into(), Json::Str(ds.name.to_string())),
        ("roads".into(), Json::Num(ds.graph.num_roads() as f64)),
        (
            "training_days".into(),
            Json::Num(ds.history.num_days() as f64),
        ),
        ("k".into(), Json::Num(k as f64)),
        ("quick".into(), Json::Bool(quick)),
        ("bit_identical".into(), Json::Bool(true)),
        (
            "runs".into(),
            Json::Arr(
                runs.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("threads".into(), Json::Num(r.threads as f64)),
                            ("corr_ms".into(), Json::Num(r.corr_ms)),
                            ("influence_ms".into(), Json::Num(r.influence_ms)),
                            ("select_ms".into(), Json::Num(r.select_ms)),
                            ("train_ms".into(), Json::Num(r.train_ms)),
                            ("retrain_ms".into(), Json::Num(r.retrain_ms)),
                            ("total_ms".into(), Json::Num(r.total_ms())),
                            ("speedup".into(), Json::Num(serial_total / r.total_ms())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write("BENCH_train.json", json.encode() + "\n").expect("write BENCH_train.json");
    println!("wrote BENCH_train.json");
}
