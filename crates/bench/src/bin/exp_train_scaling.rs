//! Experiment E11 — parallel training scaling across thread counts,
//! plus full-vs-incremental `INGEST_DAY` retrain timings.
//!
//! Part one times every stage of the training pipeline (correlation
//! build, influence model, CELF seed selection, end-to-end estimator
//! training, and a daemon-style `INGEST_DAY` retrain through
//! [`TrainState`]) at `--train-threads` 1, 2, 4, 8 (1, 4 under
//! `--quick` — the pair CI's scaling gate compares). Before any
//! timing is reported, every thread count's
//! outputs are asserted **bit-identical** to the serial run — the
//! parallel pipeline is a pure wall-clock optimisation, never a
//! numerics change.
//!
//! Part two ingests the same crowdsourced-style sparse day twice —
//! once through a standing [`IncrementalTrainer`]'s delta-propagation
//! path and once as a from-scratch rebuild — asserts the two
//! estimators byte-identical, and reports the speedup. The full run
//! covers the medium metro and the ≈4k-road large metro, where one
//! day's delta is a small fraction of the network. Results are written
//! to `BENCH_train.json` for CI artifacts and trend tracking.

use bench::{f3, timed, Table};
use crowdspeed::prelude::*;
use crowdspeed::seed::lazy_greedy::lazy_greedy_threads;
use crowdspeed_server::json::Json;
use crowdspeed_server::state::RetrainMode;
use crowdspeed_server::TrainState;
use roadnet::RoadId;
use trafficsim::dataset::Dataset;
use trafficsim::SpeedField;

/// All stage timings for one thread count, in milliseconds.
struct Run {
    threads: usize,
    corr_ms: f64,
    influence_ms: f64,
    select_ms: f64,
    train_ms: f64,
    retrain_ms: f64,
}

impl Run {
    fn total_ms(&self) -> f64 {
        self.corr_ms + self.influence_ms + self.select_ms + self.train_ms + self.retrain_ms
    }
}

fn corr_config() -> CorrelationConfig {
    CorrelationConfig {
        min_cotrend: 0.6,
        min_co_observations: 6,
        ..CorrelationConfig::default()
    }
}

/// Runs the full pipeline at one thread count, asserting bit-identity
/// of every stage against the serial reference when one is given.
fn run_at(
    ds: &Dataset,
    stats: &HistoryStats,
    k: usize,
    threads: usize,
    reference: Option<&(CorrelationGraph, Vec<RoadId>, Vec<f64>)>,
) -> (Run, (CorrelationGraph, Vec<RoadId>, Vec<f64>)) {
    let (corr, corr_ms) = timed(|| {
        CorrelationGraph::build_threaded(&ds.graph, &ds.history, stats, &corr_config(), threads)
    });
    let (influence, influence_ms) =
        timed(|| InfluenceModel::build_threaded(&corr, &InfluenceConfig::default(), threads));
    let (selection, select_ms) = timed(|| lazy_greedy_threads(&influence, k, threads));
    let seeds = selection.seeds.clone();
    let config = EstimatorConfig {
        train_threads: threads,
        ..EstimatorConfig::default()
    };
    let (est, train_ms) = timed(|| {
        TrafficEstimator::train(&ds.graph, &ds.history, stats, &corr, &seeds, &config)
            .expect("estimator trains")
    });

    // Daemon-style retrain: bootstrap TrainState, ingest one observed
    // day, and retrain exactly as the INGEST_DAY handler does.
    let mut state = TrainState::new(
        ds.graph.clone(),
        &ds.history,
        seeds.clone(),
        &corr_config(),
        config,
    );
    state
        .ingest_day(ds.test_days[0].clone())
        .expect("ingest day");
    let (retrained, retrain_ms) = timed(|| state.train().expect("retrain succeeds"));

    // The smoke-check payload: serving outputs at one rush-hour slot.
    let slot = 8.min(ds.clock.slots_per_day - 1);
    let truth = &ds.test_days[0];
    let obs: Vec<(RoadId, f64)> = seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
    let speeds = est.estimate(slot, &obs).speeds;
    let retrain_speeds = retrained.estimate(slot, &obs).speeds;

    if let Some((ref_corr, ref_seeds, ref_speeds)) = reference {
        assert_eq!(
            corr.num_edges(),
            ref_corr.num_edges(),
            "threads={threads}: correlation edge count diverged"
        );
        for (a, b) in corr.edges().iter().zip(ref_corr.edges()) {
            assert!(
                (a.a, a.b, a.support) == (b.a, b.b, b.support)
                    && a.cotrend.to_bits() == b.cotrend.to_bits(),
                "threads={threads}: correlation edge ({}, {}) diverged",
                a.a,
                a.b
            );
        }
        assert_eq!(&seeds, ref_seeds, "threads={threads}: seed set diverged");
        for (r, (a, b)) in speeds.iter().zip(ref_speeds).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "threads={threads}, road {r}: speed {a} != serial {b}"
            );
        }
    }
    // The retrained model must serve deterministically too (same state,
    // same outputs regardless of thread count) — compare against the
    // freshly trained model only for finiteness, the cross-thread check
    // runs through the reference tuple above.
    assert!(retrain_speeds.iter().all(|v| v.is_finite()));

    (
        Run {
            threads,
            corr_ms,
            influence_ms,
            select_ms,
            train_ms,
            retrain_ms,
        },
        (corr, seeds, speeds),
    )
}

/// One full-vs-incremental `INGEST_DAY` measurement.
struct IngestRun {
    dataset: &'static str,
    roads: usize,
    threads: usize,
    full_ms: f64,
    incremental_ms: f64,
    edges_changed: u64,
    rows_folded: usize,
}

impl IngestRun {
    fn speedup(&self) -> f64 {
        self.full_ms / self.incremental_ms
    }
}

/// Crowdsourced-style thinning: keeps roughly `keep_pct`% of `day`'s
/// observed cells, NaNs the rest (deterministic xorshift, so the
/// experiment is reproducible).
fn sparse_day(day: &SpeedField, keep_pct: u64) -> SpeedField {
    let mut rng = 0x5DEE_CE66_D123_4567u64;
    let mut out = SpeedField::filled(day.num_slots(), day.num_roads(), f64::NAN);
    for slot in 0..day.num_slots() {
        for road in 0..day.num_roads() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let road = RoadId(road as u32);
            let v = day.speed(slot, road);
            if !v.is_nan() && rng % 100 < keep_pct {
                out.set_speed(slot, road, v);
            }
        }
    }
    out
}

/// The estimator's snapshot encoding — the byte string the full and
/// incremental paths must agree on.
fn estimator_bytes(est: &TrafficEstimator) -> Vec<u8> {
    let mut buf = bytes::BytesMut::new();
    est.encode_snapshot_into(&mut buf);
    buf.to_vec()
}

/// Ingests the same sparse day through both retrain paths on `ds`,
/// asserting the resulting estimators byte-identical before reporting
/// the timings. The coverage budget is unlimited so the decision
/// matrix cannot fall back to a re-anchor mid-measurement.
fn ingest_comparison(ds: &Dataset, threads: usize) -> IngestRun {
    let k = (ds.graph.num_roads() / 8).max(4);
    let stats = HistoryStats::compute(&ds.history);
    let corr =
        CorrelationGraph::build_threaded(&ds.graph, &ds.history, &stats, &corr_config(), threads);
    let influence = InfluenceModel::build_threaded(&corr, &InfluenceConfig::default(), threads);
    let seeds = lazy_greedy_threads(&influence, k, threads).seeds;
    let config = EstimatorConfig {
        train_threads: threads,
        max_incremental_fraction: f64::INFINITY,
        ..EstimatorConfig::default()
    };
    let day = sparse_day(&ds.test_days[0], 10);

    // Full path: plain ingest, then a from-scratch rebuild.
    let mut full_state = TrainState::new(
        ds.graph.clone(),
        &ds.history,
        seeds.clone(),
        &corr_config(),
        config.clone(),
    );
    full_state
        .ingest_day(day.clone())
        .expect("full-path ingest");
    let (full_est, full_ms) = timed(|| full_state.train().expect("full retrain"));

    // Incremental path: establish a standing trainer (untimed), then
    // time the delta-propagated ingest of the same day.
    let mut inc_state =
        TrainState::new(ds.graph.clone(), &ds.history, seeds, &corr_config(), config);
    inc_state.train().expect("initial train");
    let (outcome, incremental_ms) = timed(|| {
        inc_state
            .ingest_and_train(day.clone())
            .expect("incremental retrain")
    });
    assert_eq!(
        outcome.mode,
        RetrainMode::Incremental,
        "{}: unlimited budget must take the incremental arm",
        ds.name
    );
    assert_eq!(
        estimator_bytes(&outcome.estimator),
        estimator_bytes(&full_est),
        "{}: incremental and full retrains must agree byte for byte",
        ds.name
    );
    let s = &outcome.stats;
    IngestRun {
        dataset: ds.name,
        roads: ds.graph.num_roads(),
        threads,
        full_ms,
        incremental_ms,
        edges_changed: (s.edges_updated + s.edges_added + s.edges_removed) as u64,
        rows_folded: s.fold.rows_folded,
    }
}

fn main() {
    let quick = bench::quick_mode();
    // Quick mode runs exactly the {1, 4} pair: CI's train-scaling gate
    // parses those two runs out of BENCH_train.json and fails the job
    // if the 4-thread train stage is not meaningfully faster.
    let thread_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let ds = if quick {
        bench::presets::quick()
    } else {
        bench::presets::metro()
    };
    let k = (ds.graph.num_roads() / 8).max(4);
    let stats = HistoryStats::compute(&ds.history);

    println!(
        "E11: training-pipeline scaling on {} ({} roads, {} training days, K = {k})",
        ds.name,
        ds.graph.num_roads(),
        ds.history.num_days()
    );

    let mut runs: Vec<Run> = Vec::new();
    let mut reference: Option<(CorrelationGraph, Vec<RoadId>, Vec<f64>)> = None;
    for &threads in thread_counts {
        let (run, outputs) = run_at(&ds, &stats, k, threads, reference.as_ref());
        runs.push(run);
        if reference.is_none() {
            reference = Some(outputs);
        }
    }
    println!("bit-identity: all thread counts match the serial model exactly");

    // Per-stage speedups alongside the total: a flat stage can no
    // longer hide behind a fast one in the aggregate column.
    let serial_total = runs[0].total_ms();
    let serial_train = runs[0].train_ms;
    let serial_retrain = runs[0].retrain_ms;
    let mut t = Table::new(&[
        "threads",
        "corr-ms",
        "influence-ms",
        "select-ms",
        "train-ms",
        "retrain-ms",
        "total-ms",
        "speedup",
        "train-spd",
        "retrain-spd",
    ]);
    for run in &runs {
        t.row(&[
            run.threads.to_string(),
            f3(run.corr_ms),
            f3(run.influence_ms),
            f3(run.select_ms),
            f3(run.train_ms),
            f3(run.retrain_ms),
            f3(run.total_ms()),
            f3(serial_total / run.total_ms()),
            f3(serial_train / run.train_ms),
            f3(serial_retrain / run.retrain_ms),
        ]);
    }
    t.print();

    // Part two: full-vs-incremental INGEST_DAY on a sparse crowd day.
    let ingest_threads = *thread_counts.last().unwrap();
    let ingest_datasets: Vec<Dataset> = if quick {
        vec![bench::presets::quick()]
    } else {
        vec![bench::presets::metro(), bench::presets::large()]
    };
    println!("\nINGEST_DAY retrain: full rebuild vs incremental delta propagation ({ingest_threads} threads)");
    let ingest_runs: Vec<IngestRun> = ingest_datasets
        .iter()
        .map(|ds| ingest_comparison(ds, ingest_threads))
        .collect();
    let mut t = Table::new(&[
        "dataset",
        "roads",
        "full-ms",
        "incremental-ms",
        "speedup",
        "edges-changed",
        "rows-folded",
    ]);
    for run in &ingest_runs {
        t.row(&[
            run.dataset.to_string(),
            run.roads.to_string(),
            f3(run.full_ms),
            f3(run.incremental_ms),
            f3(run.speedup()),
            run.edges_changed.to_string(),
            run.rows_folded.to_string(),
        ]);
    }
    t.print();
    println!("bit-identity: every incremental ingest matched its full rebuild byte for byte");

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("train_scaling".into())),
        ("dataset".into(), Json::Str(ds.name.to_string())),
        ("roads".into(), Json::Num(ds.graph.num_roads() as f64)),
        (
            "training_days".into(),
            Json::Num(ds.history.num_days() as f64),
        ),
        ("k".into(), Json::Num(k as f64)),
        ("quick".into(), Json::Bool(quick)),
        // Cores on the measurement host: speedups cannot exceed this,
        // so a flat table on a 1-core box is a hardware ceiling, not a
        // pipeline regression.
        (
            "host_cores".into(),
            Json::Num(
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1) as f64,
            ),
        ),
        ("bit_identical".into(), Json::Bool(true)),
        (
            "runs".into(),
            Json::Arr(
                runs.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("threads".into(), Json::Num(r.threads as f64)),
                            ("corr_ms".into(), Json::Num(r.corr_ms)),
                            ("influence_ms".into(), Json::Num(r.influence_ms)),
                            ("select_ms".into(), Json::Num(r.select_ms)),
                            ("train_ms".into(), Json::Num(r.train_ms)),
                            ("retrain_ms".into(), Json::Num(r.retrain_ms)),
                            ("total_ms".into(), Json::Num(r.total_ms())),
                            ("speedup".into(), Json::Num(serial_total / r.total_ms())),
                            ("train_speedup".into(), Json::Num(serial_train / r.train_ms)),
                            (
                                "retrain_speedup".into(),
                                Json::Num(serial_retrain / r.retrain_ms),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "ingest".into(),
            Json::Arr(
                ingest_runs
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("dataset".into(), Json::Str(r.dataset.to_string())),
                            ("roads".into(), Json::Num(r.roads as f64)),
                            ("threads".into(), Json::Num(r.threads as f64)),
                            ("full_ms".into(), Json::Num(r.full_ms)),
                            ("incremental_ms".into(), Json::Num(r.incremental_ms)),
                            ("speedup".into(), Json::Num(r.speedup())),
                            ("edges_changed".into(), Json::Num(r.edges_changed as f64)),
                            ("rows_folded".into(), Json::Num(r.rows_folded as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    // One JSON line per experiment in the shared results file:
    // replace our own previous line, preserve everyone else's.
    let mut lines: Vec<String> = std::fs::read_to_string("BENCH_train.json")
        .map(|text| {
            text.lines()
                .filter(|l| !l.trim().is_empty())
                .filter(|l| !l.contains("\"experiment\":\"train_scaling\""))
                .map(String::from)
                .collect()
        })
        .unwrap_or_default();
    lines.push(json.encode());
    std::fs::write("BENCH_train.json", lines.join("\n") + "\n").expect("write BENCH_train.json");
    println!("wrote BENCH_train.json");
}
