//! Experiment E3 — estimation accuracy vs budget K (the paper's
//! headline accuracy figure; abstract claim: "40 % in estimation
//! accuracy" over baselines).
//!
//! Sweeps the seed budget from 2 % to 20 % of roads and prints, for
//! each method, MAPE on the non-seed roads. Seeds come from lazy greedy
//! for every method, so the figure isolates the *estimation* models.

use bench::{f3, presets, Table};
use crowdspeed::eval::Method;
use crowdspeed::prelude::*;

fn main() {
    let ds = if bench::quick_mode() {
        presets::quick()
    } else {
        presets::metro()
    };
    let stats = HistoryStats::compute(&ds.history);
    let corr_cfg = CorrelationConfig::default();
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_cfg);
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let n = ds.graph.num_roads();

    let fractions = [0.02, 0.05, 0.10, 0.15, 0.20];
    let methods: Vec<(&str, Method)> = vec![
        ("two-step", Method::TwoStep(EstimatorConfig::default())),
        ("hist-mean", Method::HistoricalMean),
        ("knn", Method::KnnSpatial { k: 5 }),
        ("global-lr", Method::GlobalRegression),
        (
            "label-prop",
            Method::LabelPropagation {
                iterations: 30,
                anchor: 0.2,
            },
        ),
    ];

    println!(
        "E3: MAPE vs seed budget on {} (n = {n}; seeds via lazy greedy)",
        ds.name
    );
    let eval_cfg = EvalConfig {
        slots: presets::representative_slots(ds.clock.slots_per_day),
        correlation: corr_cfg,
        ..EvalConfig::default()
    };

    let mut headers: Vec<String> = vec!["K (% roads)".to_string()];
    headers.extend(methods.iter().map(|(name, _)| name.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    for &frac in &fractions {
        let k = ((n as f64 * frac) as usize).max(2);
        let seeds = lazy_greedy(&influence, k).seeds;
        let mut row = vec![format!("{k} ({:.0}%)", frac * 100.0)];
        for (_, method) in &methods {
            let rep = evaluate(&ds, &seeds, method, &eval_cfg);
            row.push(f3(rep.error.mape));
        }
        t.row(&row);
    }
    t.print();
    println!("(lower is better; hist-mean is budget-independent)");
}
