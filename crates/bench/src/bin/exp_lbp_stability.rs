//! Experiment E13 (extension) — LBP stability on dense correlation
//! clusters: the `degree_norm` design choice.
//!
//! Large intersections create near-cliques of mutually correlated
//! segments; without degree-adaptive coupling attenuation, loopy BP
//! converges to a polarised fixed point that *confidently disagrees*
//! with exact/Gibbs marginals. This experiment sweeps `degree_norm`
//! and reports (a) LBP/Gibbs confident-decision agreement, (b) the mean
//! marginal gap, and (c) trend accuracy against ground truth — showing
//! why the default sits at 3.

use bench::{f3, presets, Table};
use crowdspeed::inference::trend_model::{TrendEngine, TrendModel, TrendModelConfig};
use crowdspeed::prelude::*;
use graphmodel::gibbs::GibbsOptions;
use roadnet::RoadId;

fn main() {
    let ds = if bench::quick_mode() {
        presets::quick()
    } else {
        presets::metro()
    };
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let seeds = lazy_greedy(&influence, (ds.graph.num_roads() / 10).max(5)).seeds;
    let n = ds.graph.num_roads();

    println!(
        "E13: degree_norm sweep on {} (n = {n}, corr edges = {}, max corr degree = {})",
        ds.name,
        corr.num_edges(),
        (0..n as u32)
            .map(|r| corr.degree(RoadId(r)))
            .max()
            .unwrap_or(0)
    );
    let mut t = Table::new(&[
        "degree_norm",
        "agree(confident)",
        "mean-gap",
        "lbp-trend-acc",
        "gibbs-trend-acc",
        "lbp-iters",
    ]);

    // Average over a few held-out slots.
    let slots: Vec<usize> = presets::representative_slots(ds.clock.slots_per_day);
    let truth = &ds.test_days[0];
    for dn in [0.0, 1.5, 3.0, 6.0, 12.0] {
        let model = TrendModel::new(
            corr.clone(),
            &stats,
            TrendModelConfig {
                degree_norm: dn,
                ..TrendModelConfig::default()
            },
        );
        let mut agree = 0usize;
        let mut confident = 0usize;
        let mut gap = 0.0;
        let mut cells = 0usize;
        let mut lbp_correct = 0usize;
        let mut gibbs_correct = 0usize;
        let mut total = 0usize;
        let mut iters = 0usize;
        for &slot in &slots {
            let obs: Vec<(RoadId, bool)> = seeds
                .iter()
                .map(|&s| (s, stats.trend_of(slot, s, truth.speed(slot, s))))
                .collect();
            let lbp = model.infer(slot, &obs, &TrendEngine::default());
            let gibbs = model.infer(
                slot,
                &obs,
                &TrendEngine::Gibbs {
                    options: GibbsOptions {
                        burn_in: 100,
                        samples: 800,
                    },
                    seed: 5,
                },
            );
            iters += lbp.iterations;
            for r in 0..n {
                let (l, g) = (lbp.p_up[r], gibbs.p_up[r]);
                gap += (l - g).abs();
                cells += 1;
                if (l - 0.5).abs() > 0.15 && (g - 0.5).abs() > 0.15 {
                    confident += 1;
                    if (l >= 0.5) == (g >= 0.5) {
                        agree += 1;
                    }
                }
                let road = RoadId(r as u32);
                if seeds.contains(&road) {
                    continue;
                }
                let truth_trend = stats.trend_of(slot, road, truth.speed(slot, road));
                total += 1;
                if (l >= 0.5) == truth_trend {
                    lbp_correct += 1;
                }
                if (g >= 0.5) == truth_trend {
                    gibbs_correct += 1;
                }
            }
        }
        t.row(&[
            format!("{dn:.1}"),
            if confident > 0 {
                f3(agree as f64 / confident as f64)
            } else {
                "-".to_string()
            },
            f3(gap / cells as f64),
            f3(lbp_correct as f64 / total as f64),
            f3(gibbs_correct as f64 / total as f64),
            (iters / slots.len()).to_string(),
        ]);
    }
    t.print();
    println!("(degree_norm = 0 disables the normalisation; default is 3)");
}
