//! Experiment E9 — robustness to crowdsourcing imperfection.
//!
//! Sweeps (a) worker report noise and (b) workers per seed, showing how
//! gracefully estimation accuracy degrades as the crowd channel gets
//! worse. The trend step is inherently noise-tolerant (a report only
//! has to land on the right side of the historical average), which is
//! the effect this experiment surfaces.

use bench::{f3, presets, Table};
use crowdspeed::eval::Method;
use crowdspeed::prelude::*;
use trafficsim::crowd::CrowdParams;

fn main() {
    let ds = if bench::quick_mode() {
        presets::quick()
    } else {
        presets::metro()
    };
    let stats = HistoryStats::compute(&ds.history);
    let corr_cfg = CorrelationConfig::default();
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_cfg);
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let k = (ds.graph.num_roads() / 10).max(5);
    let seeds = lazy_greedy(&influence, k).seeds;
    let slots = presets::representative_slots(ds.clock.slots_per_day);

    let run = |crowd: CrowdParams| -> (f64, f64) {
        let rep = evaluate(
            &ds,
            &seeds,
            &Method::TwoStep(EstimatorConfig::default()),
            &EvalConfig {
                slots: slots.clone(),
                crowd,
                correlation: corr_cfg.clone(),
                ..EvalConfig::default()
            },
        );
        (rep.error.mape, rep.trend_accuracy)
    };

    println!(
        "E9a: worker noise sweep on {} (K = {k}, 5 workers/seed)",
        ds.name
    );
    let mut t = Table::new(&["noise-sigma", "mape", "trend-acc"]);
    for sigma in [0.0, 0.05, 0.10, 0.20, 0.40] {
        let (mape, tacc) = run(CrowdParams {
            noise_sigma: sigma,
            ..CrowdParams::default()
        });
        t.row(&[format!("{sigma:.2}"), f3(mape), f3(tacc)]);
    }
    t.print();

    println!("\nE9b: workers-per-seed sweep (noise sigma = 0.2)");
    let mut t = Table::new(&["workers", "mape", "trend-acc"]);
    for workers in [1usize, 2, 3, 5, 10] {
        let (mape, tacc) = run(CrowdParams {
            workers_per_seed: workers,
            noise_sigma: 0.2,
            ..CrowdParams::default()
        });
        t.row(&[workers.to_string(), f3(mape), f3(tacc)]);
    }
    t.print();
}
