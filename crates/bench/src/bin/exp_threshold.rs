//! Experiment E8 — effect of the correlation threshold τ.
//!
//! Sweeps τ from permissive to strict. Low τ admits weak, noisy
//! couplings (dense graph, slower inference, diluted propagation);
//! high τ starves the trend model of structure. The sweep exposes the
//! sweet spot the default configuration uses.

use bench::{f3, presets, timed, Table};
use crowdspeed::eval::Method;
use crowdspeed::prelude::*;

fn main() {
    let ds = if bench::quick_mode() {
        presets::quick()
    } else {
        presets::metro()
    };
    let stats = HistoryStats::compute(&ds.history);
    let k = (ds.graph.num_roads() / 10).max(5);

    println!("E8: correlation threshold τ sweep on {} (K = {k})", ds.name);
    let mut t = Table::new(&[
        "tau",
        "corr-edges",
        "avg-degree",
        "build-ms",
        "mape",
        "trend-acc",
    ]);

    for tau in [0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90] {
        let cfg = CorrelationConfig {
            min_cotrend: tau,
            ..CorrelationConfig::default()
        };
        let (corr, build_ms) =
            timed(|| CorrelationGraph::build(&ds.graph, &ds.history, &stats, &cfg));
        let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
        let seeds = lazy_greedy(&influence, k).seeds;
        let rep = evaluate(
            &ds,
            &seeds,
            &Method::TwoStep(EstimatorConfig::default()),
            &EvalConfig {
                slots: presets::representative_slots(ds.clock.slots_per_day),
                correlation: cfg,
                ..EvalConfig::default()
            },
        );
        t.row(&[
            format!("{tau:.2}"),
            corr.num_edges().to_string(),
            f3(corr.avg_degree()),
            f3(build_ms),
            f3(rep.error.mape),
            f3(rep.trend_accuracy),
        ]);
    }
    t.print();
}
