//! Experiment E6 — trend-inference efficiency vs network size (the
//! paper's efficiency figure; abstract claim: "2 orders of magnitude in
//! efficiency").
//!
//! For grid cities of growing size, times one trend inference (10 %
//! seeds observed) under each engine: LBP (production), Gibbs at a
//! well-mixed schedule (the sampling baseline), and exact enumeration
//! where feasible. Also reports how often the two engines' hard trend
//! decisions agree, to show LBP's speed costs no accuracy.

use bench::{f3, timed, Table};
use crowdspeed::inference::trend_model::TrendScratch;
use crowdspeed::prelude::*;
use graphmodel::gibbs::GibbsOptions;
use roadnet::generate::{grid_city, GridParams};
use roadnet::RoadId;
use trafficsim::dataset::{Dataset, DatasetParams};
use trafficsim::SlotClock;

fn dataset_of_width(w: usize) -> Dataset {
    let graph = grid_city(&GridParams {
        width: w,
        height: w,
        ..GridParams::default()
    });
    Dataset::assemble(
        "efficiency-grid",
        graph,
        SlotClock::hourly(),
        &DatasetParams {
            training_days: 8,
            test_days: 1,
            ..DatasetParams::default()
        },
    )
}

fn main() {
    let widths: Vec<usize> = if bench::quick_mode() {
        vec![8, 12]
    } else {
        vec![8, 12, 17, 24, 34, 48]
    };

    println!("E6: trend-inference latency vs network size (grid cities, 10% seeds)");
    let mut t = Table::new(&[
        "roads",
        "corr-edges",
        "lbp-ms",
        "lbp-warm-ms",
        "lbp-iters",
        "gibbs-ms",
        "exact-ms",
        "gibbs/lbp",
        "decision-agree",
    ]);

    for w in widths {
        let ds = dataset_of_width(w);
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig::default(),
        );
        let model = crowdspeed::inference::trend_model::TrendModel::new(
            corr.clone(),
            &stats,
            Default::default(),
        );
        let n = ds.graph.num_roads();
        let k = (n / 10).max(2);
        let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
        let seeds = lazy_greedy(&influence, k).seeds;
        let slot = ds.clock.slot_of_hour(8.25);
        let truth = &ds.test_days[0];
        let obs: Vec<(RoadId, bool)> = seeds
            .iter()
            .map(|&s| (s, stats.trend_of(slot, s, truth.speed(slot, s))))
            .collect();

        let (lbp, lbp_ms) = timed(|| model.infer(slot, &obs, &TrendEngine::default()));
        // Warm serving path: same inference with a reused workspace —
        // no message-buffer allocations after the first call.
        let mut scratch = TrendScratch::new();
        model.infer_with(slot, &obs, &TrendEngine::default(), &mut scratch);
        let (_, lbp_warm_ms) =
            timed(|| model.infer_with(slot, &obs, &TrendEngine::default(), &mut scratch));
        // A sampler must mix across the whole graph; thousands of
        // sweeps are the standard budget for marginals one would trust
        // at this scale (the consistency tests use the same order).
        let (gibbs, gibbs_ms) = timed(|| {
            model.infer(
                slot,
                &obs,
                &TrendEngine::Gibbs {
                    options: GibbsOptions {
                        burn_in: 500,
                        samples: 5000,
                    },
                    seed: 3,
                },
            )
        });
        // Exact only when the free-variable count is enumerable.
        let exact_ms = if n - seeds.len() <= 20 {
            let (_, ms) = timed(|| model.infer(slot, &obs, &TrendEngine::Exact));
            f3(ms)
        } else {
            "-".to_string()
        };

        let agree = lbp
            .decisions()
            .iter()
            .zip(gibbs.decisions())
            .filter(|(a, b)| **a == *b)
            .count() as f64
            / n as f64;

        t.row(&[
            n.to_string(),
            corr.num_edges().to_string(),
            f3(lbp_ms),
            f3(lbp_warm_ms),
            lbp.iterations.to_string(),
            f3(gibbs_ms),
            exact_ms,
            f3(gibbs_ms / lbp_ms),
            f3(agree),
        ]);
    }
    t.print();
    println!("(gibbs/lbp is the efficiency gap; decision-agree shows no accuracy is traded)");

    serving_throughput();
}

/// End-to-end serving throughput through the batch front end: the full
/// two-step estimator answering one day of requests, sequential vs
/// parallel workers (each with its own reusable workspace).
fn serving_throughput() {
    let ds = dataset_of_width(12);
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let k = (ds.graph.num_roads() / 10).max(2);
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let seeds = lazy_greedy(&influence, k).seeds;
    let est = TrafficEstimator::train(
        &ds.graph,
        &ds.history,
        &stats,
        &corr,
        &seeds,
        &EstimatorConfig::default(),
    )
    .expect("training failed");

    let truth = &ds.test_days[0];
    let repeats = if bench::quick_mode() { 2 } else { 8 };
    let requests: Vec<EstimateRequest> = (0..repeats)
        .flat_map(|_| {
            let seeds = &seeds;
            (0..ds.clock.slots_per_day).map(move |slot| EstimateRequest {
                slot_of_day: slot,
                observations: seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect(),
            })
        })
        .collect();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!();
    println!(
        "serving throughput ({} roads, {} requests, two-step estimator, {} core(s) available):",
        ds.graph.num_roads(),
        requests.len(),
        cores
    );
    if cores < 2 {
        println!("  (single-core host: parallel scaling cannot exceed x1.0 here)");
    }
    let mut base = 0.0;
    for threads in [1usize, 2, 4] {
        let out = serve_batch(&est, &requests, &ServeOptions { threads });
        let tput = out.metrics.throughput();
        if threads == 1 {
            base = tput;
        }
        println!(
            "  {threads} thread(s): {:>8.1} req/s  (x{:.2} vs sequential, mean latency {:?})",
            tput,
            if base > 0.0 { tput / base } else { 0.0 },
            out.metrics.mean_latency(),
        );
    }
}
