//! Experiment E15 — drift adaptation on a regime shift.
//!
//! A [`RegimeSimulator`] flips part of the city into a new traffic
//! regime partway through a crowdsourced ingest sequence. Two
//! identically-configured daemon states ingest the same probe-sampled
//! days: one with the drift policy on (scheduled rebootstrap + online
//! seed re-selection), one with it off. The experiment reports the
//! estimation MAE per day for both runs — the adaptation-off run
//! keeps averaging the dead regime into its trend model and context
//! graph, while the adaptation-on run detects the shift, rebootstraps
//! on the trailing window, re-selects its seed budget and recovers.
//!
//! Before any result is recorded, the rebootstrapped model is asserted
//! **byte-identical** to a state cold-trained on the same window with
//! the same re-selected seeds — adaptation is a scheduling policy,
//! never a numerics change — and the adaptation-on run must end with a
//! strictly lower cumulative post-shift MAE. Detection lag (trigger
//! day minus shift day) and recovery lag (days after the shift until
//! the MAE returns to 1.5x its pre-shift mean) go to
//! `BENCH_train.json` for CI artifacts and trend tracking.

use bench::{f3, presets, timed, Table};
use crowdspeed::drift::{DriftConfig, DriftState};
use crowdspeed::prelude::*;
use crowdspeed_server::json::Json;
use crowdspeed_server::state::RetrainMode;
use crowdspeed_server::TrainState;
use roadnet::RoadId;
use trafficsim::dataset::{metro_medium, metro_small, Dataset, DatasetParams};
use trafficsim::{HistoricalData, RegimeShiftConfig, RegimeSimulator, SpeedField};

/// Unshifted crowdsourced days ingested before the regime flips.
const PRE_DAYS: usize = 2;
/// Trailing calibration window the rebootstrap retrains on.
const WINDOW_DAYS: usize = 3;

struct DayResult {
    day: usize,
    shifted: bool,
    mae_on: f64,
    mae_off: f64,
    mode_on: &'static str,
}

fn corr_config() -> CorrelationConfig {
    CorrelationConfig {
        min_cotrend: 0.6,
        min_co_observations: 6,
        ..CorrelationConfig::default()
    }
}

/// Estimator config shared by both runs: the coverage re-anchor is
/// disabled so the drift policy (and only the drift policy) decides
/// when the context moves — the two runs stay on one trajectory until
/// the trigger.
fn config(drift: Option<DriftConfig>) -> EstimatorConfig {
    EstimatorConfig {
        max_incremental_fraction: f64::INFINITY,
        drift,
        ..EstimatorConfig::default()
    }
}

/// Punches deterministic probe-style holes into a truth day: roughly
/// `density`% of cells stay observed.
fn observe(truth: &SpeedField, rng: &mut u64, density: u64) -> SpeedField {
    let mut day = SpeedField::filled(truth.num_slots(), truth.num_roads(), f64::NAN);
    for slot in 0..truth.num_slots() {
        for road in 0..truth.num_roads() {
            *rng ^= *rng << 13;
            *rng ^= *rng >> 7;
            *rng ^= *rng << 17;
            if *rng % 100 < density {
                let id = RoadId(road as u32);
                day.set_speed(slot, id, truth.speed(slot, id));
            }
        }
    }
    day
}

/// MAE of the estimator against a truth day over the given slots,
/// with seeds reporting their true speeds. Seeds are excluded from
/// the error (they carry their observations verbatim).
fn mae(est: &TrafficEstimator, seeds: &[RoadId], truth: &SpeedField, slots: &[usize]) -> f64 {
    let is_seed: Vec<bool> = {
        let mut v = vec![false; truth.num_roads()];
        for &s in seeds {
            v[s.0 as usize] = true;
        }
        v
    };
    let mut total = 0.0;
    let mut count = 0usize;
    for &slot in slots {
        let obs: Vec<(RoadId, f64)> = seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
        let reply = est.estimate(slot, &obs);
        for (road, &seeded) in is_seed.iter().enumerate() {
            if seeded {
                continue;
            }
            total += (reply.speeds[road] - truth.speed(slot, RoadId(road as u32))).abs();
            count += 1;
        }
    }
    total / count as f64
}

fn estimator_bytes(est: &TrafficEstimator) -> Vec<u8> {
    let mut buf = bytes::BytesMut::new();
    est.encode_snapshot_into(&mut buf);
    buf.to_vec()
}

fn main() {
    let quick = bench::quick_mode();
    let (ds, post_days): (Dataset, usize) = if quick {
        (
            metro_small(&DatasetParams {
                training_days: 6,
                test_days: 1,
                ..DatasetParams::default()
            }),
            8,
        )
    } else {
        (
            metro_medium(&DatasetParams {
                training_days: 10,
                test_days: 1,
                ..DatasetParams::default()
            }),
            10,
        )
    };
    let num_roads = ds.graph.num_roads();
    let training_days = ds.history.days().len();
    let slots = presets::representative_slots(ds.clock.slots_per_day);

    // Seed budget from the bootstrap-era correlation graph, as a real
    // deployment would have chosen it before the regime moved.
    let stats = HistoryStats::compute(&ds.history);
    let corr_cfg = corr_config();
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_cfg);
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let k = (num_roads / 10).max(5);
    let seeds = lazy_greedy(&influence, k).seeds;

    // The ingest sequence: PRE_DAYS unshifted days, then the shifted
    // regime, all probe-sampled at ~70% coverage. The MAE is scored
    // against the dense truth days.
    let regime = RegimeSimulator::new(
        ds.simulator.clone(),
        RegimeShiftConfig {
            shift_day: (training_days + PRE_DAYS) as u64,
            drop_fraction: 0.5,
            capacity_drop: 0.5,
            swap_pairs: 12,
            seed: 11,
        },
    );
    let truths = regime.simulate_days(training_days as u64, PRE_DAYS + post_days);
    let mut rng = 0x5EED_5EED_5EED_5EEDu64;
    let observed: Vec<SpeedField> = truths.iter().map(|t| observe(t, &mut rng, 70)).collect();

    let new_state = |drift: Option<DriftConfig>| -> TrainState {
        TrainState::new(
            ds.graph.clone(),
            &ds.history,
            seeds.clone(),
            &corr_cfg,
            config(drift),
        )
    };

    // Calibrate the trigger threshold the way an operator would: run
    // the adaptation-off observer first, record the drift-signal
    // trajectory, and put the threshold halfway between the pre- and
    // post-shift signal levels.
    println!(
        "E15: drift adaptation on {} ({num_roads} roads, K = {k}, shift after day {PRE_DAYS})",
        ds.name
    );
    let mut observer = new_state(None);
    let signals: Vec<f64> = observed
        .iter()
        .map(|day| {
            observer.ingest_day(day.clone()).expect("observer ingest");
            crowdspeed::drift::signal(observer.online(), observer.context()).value()
        })
        .collect();
    let premax = signals[..PRE_DAYS].iter().cloned().fold(0.0, f64::max);
    let postmax = signals[PRE_DAYS..].iter().cloned().fold(0.0, f64::max);
    assert!(
        postmax > premax + 0.05,
        "the regime shift must move the signal visibly: pre {premax} post {postmax}"
    );
    let threshold = (premax + postmax) / 2.0;
    // Cooldown long enough that the trailing window holds only shifted
    // days when the trigger fires.
    let drift_cfg = DriftConfig {
        threshold,
        cooldown_days: (PRE_DAYS + WINDOW_DAYS) as u64,
        window_days: WINDOW_DAYS,
    };
    let expected_trigger = {
        let mut st = DriftState::default();
        signals.iter().enumerate().find_map(|(i, &value)| {
            st.note_ingest();
            st.should_trigger(&drift_cfg, value).then_some(i)
        })
    }
    .expect("the calibrated threshold must be crossed after the shift");

    let mut adapt_on = new_state(Some(drift_cfg.clone()));
    let mut adapt_off = new_state(None);
    let mut est_on = adapt_on.train().expect("initial train (on)");
    let mut est_off = adapt_off.train().expect("initial train (off)");

    // Yesterday's model serves today: score day d with the model
    // trained through day d-1, then ingest day d.
    let mut days: Vec<DayResult> = Vec::with_capacity(observed.len());
    let mut trigger_days: Vec<usize> = Vec::new();
    let mut rebootstrap_ms = 0.0;
    let mut equivalence_ok = false;
    for (d, (truth, day)) in truths.iter().zip(&observed).enumerate() {
        let mae_on = mae(&est_on, adapt_on.seeds(), truth, &slots);
        let mae_off = mae(&est_off, adapt_off.seeds(), truth, &slots);

        let (outcome_on, ms_on) = timed(|| adapt_on.ingest_and_train(day.clone()));
        let outcome_on = outcome_on.expect("ingest (on)");
        est_on = outcome_on.estimator;
        est_off = adapt_off
            .ingest_and_train(day.clone())
            .expect("ingest (off)")
            .estimator;

        // The replay over the observer trajectory predicts the first
        // trigger exactly; later re-triggers (the signal is measured
        // against the re-anchored window context, which can drift
        // again) are legal policy behaviour and get the same
        // equivalence check.
        if outcome_on.mode == RetrainMode::FullRebootstrap {
            if trigger_days.is_empty() {
                assert_eq!(
                    d, expected_trigger,
                    "the trigger fires where the replay says"
                );
                rebootstrap_ms = ms_on;
            }
            trigger_days.push(d);
            // Equivalence before any result: the rebootstrapped model
            // must be byte-identical to a cold start on the same
            // window with the same re-selected seeds.
            let window = HistoricalData::from_days(ds.clock, adapt_on.days().to_vec());
            let cold = TrainState::new(
                ds.graph.clone(),
                &window,
                adapt_on.seeds().to_vec(),
                &corr_cfg,
                config(None),
            )
            .train()
            .expect("cold reference train");
            assert_eq!(
                estimator_bytes(&est_on),
                estimator_bytes(&cold),
                "rebootstrap must equal a cold start on the window"
            );
            equivalence_ok = true;
        }

        days.push(DayResult {
            day: d,
            shifted: d >= PRE_DAYS,
            mae_on,
            mae_off,
            mode_on: outcome_on.mode.name(),
        });
    }
    let trigger_day = *trigger_days
        .first()
        .expect("the drift trigger must fire after the shift");
    assert!(equivalence_ok);

    let pre_mean_on: f64 = days[..PRE_DAYS].iter().map(|r| r.mae_on).sum::<f64>() / PRE_DAYS as f64;
    let post_on: f64 = days[PRE_DAYS..].iter().map(|r| r.mae_on).sum();
    let post_off: f64 = days[PRE_DAYS..].iter().map(|r| r.mae_off).sum();
    assert!(
        post_on < post_off,
        "adaptation must strictly lower the cumulative post-shift MAE: on {post_on} off {post_off}"
    );
    let detection_lag = trigger_day - PRE_DAYS;
    // Days after the shift until the adapted run's MAE returns to
    // 1.5x its pre-shift mean (post_days if it never does).
    let recovery_lag = days[PRE_DAYS..]
        .iter()
        .position(|r| r.mae_on <= 1.5 * pre_mean_on)
        .unwrap_or(post_days);

    let mut table = Table::new(&["day", "regime", "mae-off", "mae-on", "retrain"]);
    for r in &days {
        table.row(&[
            r.day.to_string(),
            if r.shifted { "shifted" } else { "base" }.to_string(),
            f3(r.mae_off),
            f3(r.mae_on),
            r.mode_on.to_string(),
        ]);
    }
    table.print();
    println!(
        "threshold {} (signal pre {premax:.3} / post {postmax:.3}); trigger day {trigger_day} \
         (detection lag {detection_lag}d, recovery lag {recovery_lag}d); \
         rebootstrap {} ms; post-shift MAE {} (on) vs {} (off)",
        f3(threshold),
        f3(rebootstrap_ms),
        f3(post_on),
        f3(post_off),
    );

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("drift_adaptation".into())),
        ("dataset".into(), Json::Str(ds.name.to_string())),
        ("roads".into(), Json::Num(num_roads as f64)),
        ("k".into(), Json::Num(k as f64)),
        ("quick".into(), Json::Bool(quick)),
        ("threshold".into(), Json::Num(threshold)),
        ("shift_day".into(), Json::Num(PRE_DAYS as f64)),
        ("trigger_day".into(), Json::Num(trigger_day as f64)),
        ("triggers".into(), Json::Num(trigger_days.len() as f64)),
        ("detection_lag_days".into(), Json::Num(detection_lag as f64)),
        ("recovery_lag_days".into(), Json::Num(recovery_lag as f64)),
        ("rebootstrap_ms".into(), Json::Num(rebootstrap_ms)),
        ("equivalence_ok".into(), Json::Bool(equivalence_ok)),
        ("post_shift_mae_on".into(), Json::Num(post_on)),
        ("post_shift_mae_off".into(), Json::Num(post_off)),
        (
            "days".into(),
            Json::Arr(
                days.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("day".into(), Json::Num(r.day as f64)),
                            ("shifted".into(), Json::Bool(r.shifted)),
                            ("mae_on".into(), Json::Num(r.mae_on)),
                            ("mae_off".into(), Json::Num(r.mae_off)),
                            ("retrain".into(), Json::Str(r.mode_on.into())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    // One JSON line per experiment in the shared results file:
    // replace our own previous line, preserve everyone else's.
    let mut lines: Vec<String> = std::fs::read_to_string("BENCH_train.json")
        .map(|text| {
            text.lines()
                .filter(|l| !l.trim().is_empty())
                .filter(|l| !l.contains("\"experiment\":\"drift_adaptation\""))
                .map(String::from)
                .collect()
        })
        .unwrap_or_default();
    lines.push(json.encode());
    std::fs::write("BENCH_train.json", lines.join("\n") + "\n").expect("write BENCH_train.json");
    println!("wrote BENCH_train.json");
}
