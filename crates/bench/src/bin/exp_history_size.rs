//! Experiment E11 — sensitivity to training-history size.
//!
//! Truncates the training history to its first `d` days and re-runs the
//! full pipeline (statistics, correlation graph, seed selection,
//! training, evaluation). Short histories starve both the correlation
//! estimates and the HLM; the curve shows where returns flatten.

use bench::{f3, presets, Table};
use crowdspeed::eval::Method;
use crowdspeed::prelude::*;
use trafficsim::dataset::Dataset;

fn main() {
    let full = if bench::quick_mode() {
        presets::quick()
    } else {
        presets::metro()
    };
    let k = (full.graph.num_roads() / 10).max(5);
    let max_days = full.history.num_days();

    println!(
        "E11: training-history size sweep on {} (K = {k}, up to {max_days} days)",
        full.name
    );
    let mut t = Table::new(&["days", "corr-edges", "mape", "trend-acc"]);

    let days_list: Vec<usize> = [2usize, 4, 6, 10, 15, 20]
        .into_iter()
        .filter(|&d| d <= max_days)
        .collect();
    for days in days_list {
        let ds = Dataset {
            history: full.history.truncated(days),
            ..full.clone()
        };
        let stats = HistoryStats::compute(&ds.history);
        // Short histories have fewer co-observations; scale the support
        // floor so the graph does not vanish at d = 2.
        let corr_cfg = CorrelationConfig {
            min_co_observations: (days as u32 * 2).clamp(4, 12),
            ..CorrelationConfig::default()
        };
        let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_cfg);
        let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
        let seeds = lazy_greedy(&influence, k).seeds;
        let rep = evaluate(
            &ds,
            &seeds,
            &Method::TwoStep(EstimatorConfig::default()),
            &EvalConfig {
                slots: presets::representative_slots(ds.clock.slots_per_day),
                correlation: corr_cfg,
                ..EvalConfig::default()
            },
        );
        t.row(&[
            days.to_string(),
            corr.num_edges().to_string(),
            f3(rep.error.mape),
            f3(rep.trend_accuracy),
        ]);
    }
    t.print();
}
