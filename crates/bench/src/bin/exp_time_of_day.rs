//! Experiment E5 — estimation error by time of day.
//!
//! Fixes the budget at 10 % and reports per-period MAPE: congested
//! rush-hour slots are harder than free-flowing night slots, and the
//! advantage of the trend model concentrates where it matters (rush).

use bench::{f3, presets, Table};
use crowdspeed::eval::Method;
use crowdspeed::prelude::*;

fn main() {
    let ds = if bench::quick_mode() {
        presets::quick()
    } else {
        presets::metro()
    };
    let stats = HistoryStats::compute(&ds.history);
    let corr_cfg = CorrelationConfig::default();
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_cfg);
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let k = (ds.graph.num_roads() / 10).max(5);
    let seeds = lazy_greedy(&influence, k).seeds;

    let spd = ds.clock.slots_per_day;
    let hour_slots = |lo: f64, hi: f64| -> Vec<usize> {
        (0..spd)
            .filter(|&s| {
                let h = ds.clock.hour_of_slot(s);
                h >= lo && h < hi
            })
            .collect()
    };
    let periods: Vec<(&str, Vec<usize>)> = vec![
        ("night 0-6h", hour_slots(0.0, 6.0)),
        ("am-rush 7-10h", hour_slots(7.0, 10.0)),
        ("midday 10-16h", hour_slots(10.0, 16.0)),
        ("pm-rush 16-20h", hour_slots(16.0, 20.0)),
        ("evening 20-24h", hour_slots(20.0, 24.0)),
    ];

    println!("E5: MAPE by time of day on {} (K = {k})", ds.name);
    let mut t = Table::new(&["period", "two-step", "hist-mean", "knn", "trend-acc(2step)"]);
    for (name, slots) in periods {
        let cfg = EvalConfig {
            slots,
            correlation: corr_cfg.clone(),
            ..EvalConfig::default()
        };
        let ours = evaluate(
            &ds,
            &seeds,
            &Method::TwoStep(EstimatorConfig::default()),
            &cfg,
        );
        let hist = evaluate(&ds, &seeds, &Method::HistoricalMean, &cfg);
        let knn = evaluate(&ds, &seeds, &Method::KnnSpatial { k: 5 }, &cfg);
        t.row(&[
            name.to_string(),
            f3(ours.error.mape),
            f3(hist.error.mape),
            f3(knn.error.mape),
            f3(ours.trend_accuracy),
        ]);
    }
    t.print();
}
