//! Lock-free serving metrics, surfaced through the `STATS` command.
//!
//! Every counter is a relaxed [`AtomicU64`]: serving-path updates are
//! single increments with no cross-counter invariants, so the snapshot
//! read by `STATS` is allowed to be torn across counters (each counter
//! is individually consistent, which is all dashboards need).

use crate::protocol::{Codec, CommandStats, StatsReply, LATENCY_BUCKET_BOUNDS_US};
use crate::snapshot::RejectReason;
use crate::state::RetrainMode;
use crowdspeed::prelude::RetrainStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Command slots tracked by the per-command counters, in wire order.
/// `estimate_batch` is appended last so the indices of the original
/// five commands — which tests and dashboards pin — never move.
pub const COMMAND_NAMES: [&str; 6] = [
    "estimate",
    "ingest_day",
    "stats",
    "shutdown",
    "snapshot",
    "estimate_batch",
];

/// Index into [`COMMAND_NAMES`] / [`Metrics::commands`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// `ESTIMATE` frames.
    Estimate = 0,
    /// `INGEST_DAY` frames.
    IngestDay = 1,
    /// `STATS` frames.
    Stats = 2,
    /// `SHUTDOWN` frames.
    Shutdown = 3,
    /// `SNAPSHOT` frames.
    Snapshot = 4,
    /// `ESTIMATE_BATCH` frames (one count per frame, not per item).
    EstimateBatch = 5,
}

#[derive(Default)]
struct CommandCounters {
    received: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
}

/// The daemon-wide metrics registry.
pub struct Metrics {
    started: Instant,
    commands: [CommandCounters; 6],
    rejected_overload: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_connections: AtomicU64,
    worker_panics: AtomicU64,
    retrain_failures: AtomicU64,
    /// One count per [`RetrainMode`], indexed by discriminant.
    retrains: [AtomicU64; RetrainMode::ALL.len()],
    /// Cumulative correlation edges updated/added/removed by
    /// incremental retrains.
    retrain_edges_changed: AtomicU64,
    /// Cumulative HLM design rows folded by incremental retrains.
    retrain_rows_folded: AtomicU64,
    /// Cumulative wall time spent inside incremental retrains.
    retrain_incremental_ms: AtomicU64,
    epoch: AtomicU64,
    days_ingested: AtomicU64,
    snapshot_writes: AtomicU64,
    snapshot_write_failures: AtomicU64,
    /// Gauge: 1 when this process resumed from a snapshot instead of
    /// training at startup, else 0.
    snapshot_resumed: AtomicU64,
    /// One count per [`RejectReason`], indexed by discriminant.
    snapshot_rejects: [AtomicU64; RejectReason::ALL.len()],
    /// Cumulative non-seed observations skipped across all served
    /// estimates.
    ignored_observations: AtomicU64,
    /// One count per bound in [`LATENCY_BUCKET_BOUNDS_US`] plus a
    /// final overflow bucket.
    latency: [AtomicU64; LATENCY_BUCKET_BOUNDS_US.len() + 1],
    /// Requests refused by a per-connection token bucket.
    rate_limited: AtomicU64,
    /// Gauge: connections currently registered with the event loop.
    open_connections: AtomicU64,
    /// Frames decoded from the JSON codec.
    requests_json: AtomicU64,
    /// Frames decoded from the binary codec.
    requests_binary: AtomicU64,
    /// Gauge: latest drift-signal value, stored as `f64::to_bits`.
    drift_signal_bits: AtomicU64,
    /// Drift-triggered full rebootstraps since this model lineage began
    /// (carried across restarts via the snapshot, unlike the `retrains`
    /// counters which reset with the process).
    drift_triggers: AtomicU64,
    /// Gauge: model epoch the latest rebootstrap published (0 = never).
    drift_last_rebootstrap_epoch: AtomicU64,
    /// Gauge: |old ∩ new| of the latest seed re-selection.
    drift_seed_overlap: AtomicU64,
}

impl Metrics {
    /// Fresh registry; the epoch gauge starts at `epoch`.
    pub fn new(epoch: u64, days_ingested: u64) -> Metrics {
        Metrics {
            started: Instant::now(),
            commands: Default::default(),
            rejected_overload: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            rejected_connections: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            retrain_failures: AtomicU64::new(0),
            retrains: Default::default(),
            retrain_edges_changed: AtomicU64::new(0),
            retrain_rows_folded: AtomicU64::new(0),
            retrain_incremental_ms: AtomicU64::new(0),
            epoch: AtomicU64::new(epoch),
            days_ingested: AtomicU64::new(days_ingested),
            snapshot_writes: AtomicU64::new(0),
            snapshot_write_failures: AtomicU64::new(0),
            snapshot_resumed: AtomicU64::new(0),
            snapshot_rejects: Default::default(),
            ignored_observations: AtomicU64::new(0),
            latency: Default::default(),
            rate_limited: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            requests_json: AtomicU64::new(0),
            requests_binary: AtomicU64::new(0),
            drift_signal_bits: AtomicU64::new(0f64.to_bits()),
            drift_triggers: AtomicU64::new(0),
            drift_last_rebootstrap_epoch: AtomicU64::new(0),
            drift_seed_overlap: AtomicU64::new(0),
        }
    }

    /// Marks a decoded frame of command `cmd`.
    pub fn received(&self, cmd: Command) {
        self.commands[cmd as usize]
            .received
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a successful completion of `cmd`.
    pub fn ok(&self, cmd: Command) {
        self.commands[cmd as usize]
            .ok
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a typed-error completion of `cmd`.
    pub fn error(&self, cmd: Command) {
        self.commands[cmd as usize]
            .errors
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an estimate refused by admission control.
    pub fn reject_overload(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an estimate dropped for an expired deadline.
    pub fn reject_deadline(&self) {
        self.rejected_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a connection refused at the acceptor (connection cap hit
    /// or a handler thread could not be spawned).
    pub fn reject_connection(&self) {
        self.rejected_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a serving-worker panic that was isolated to one request.
    pub fn worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a retrain that failed (panic or training error) after
    /// passing the shape check; the previous model keeps serving.
    pub fn retrain_failure(&self) {
        self.retrain_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one successful `INGEST_DAY` retrain by the path it took,
    /// folding the incremental path's patch telemetry into the
    /// cumulative `retrain_*` counters (the full paths rebuild every
    /// layer, so their `stats` are zeroed and contribute nothing).
    pub fn retrain(&self, mode: RetrainMode, stats: &RetrainStats) {
        self.retrains[mode as usize].fetch_add(1, Ordering::Relaxed);
        let edges = (stats.edges_updated + stats.edges_added + stats.edges_removed) as u64;
        self.retrain_edges_changed
            .fetch_add(edges, Ordering::Relaxed);
        self.retrain_rows_folded
            .fetch_add(stats.fold.rows_folded as u64, Ordering::Relaxed);
        if mode == RetrainMode::Incremental {
            let ms = stats.corr_ms
                + stats.trend_ms
                + stats.influence_ms
                + stats.hlm_fold_ms
                + stats.hlm_fit_ms;
            self.retrain_incremental_ms.fetch_add(ms, Ordering::Relaxed);
        }
    }

    /// Publishes a new model epoch to the gauge.
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Relaxed);
    }

    /// Current model-epoch gauge.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Updates the ingested-days gauge.
    pub fn set_days_ingested(&self, days: u64) {
        self.days_ingested.store(days, Ordering::Relaxed);
    }

    /// Counts a snapshot file written (initial train, post-ingest
    /// publish, or an explicit `SNAPSHOT` command).
    pub fn snapshot_write(&self) {
        self.snapshot_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a snapshot write that failed; serving continues.
    pub fn snapshot_write_failure(&self) {
        self.snapshot_write_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks whether this process resumed from a snapshot at startup.
    pub fn set_snapshot_resumed(&self, resumed: bool) {
        self.snapshot_resumed
            .store(resumed as u64, Ordering::Relaxed);
    }

    /// Counts a snapshot file refused during the resume scan.
    pub fn snapshot_reject(&self, reason: RejectReason) {
        self.snapshot_rejects[reason as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` skipped non-seed observations from one served estimate.
    pub fn add_ignored_observations(&self, n: u64) {
        self.ignored_observations.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a request refused by a connection's token bucket.
    pub fn rate_limited(&self) {
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the open-connections gauge as the event loop registers a
    /// client socket.
    pub fn conn_opened(&self) {
        self.open_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the open-connections gauge as a client socket is dropped.
    pub fn conn_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current open-connections gauge.
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// Counts one well-framed request by the codec it arrived in.
    pub fn codec_request(&self, codec: Codec) {
        match codec {
            Codec::Json => &self.requests_json,
            Codec::Binary => &self.requests_binary,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Mirrors the train state's drift-adaptation gauges (called under
    /// the train lock after every ingest and once at spawn, so the
    /// four gauges can only be torn against each other by one ingest).
    pub fn set_drift(&self, drift: &crowdspeed::drift::DriftState) {
        self.drift_signal_bits
            .store(drift.last_signal.to_bits(), Ordering::Relaxed);
        self.drift_triggers.store(drift.triggers, Ordering::Relaxed);
        self.drift_last_rebootstrap_epoch
            .store(drift.last_rebootstrap_epoch, Ordering::Relaxed);
        self.drift_seed_overlap
            .store(drift.last_seed_overlap, Ordering::Relaxed);
    }

    /// Records one served-estimate latency in the histogram.
    pub fn observe_latency_us(&self, micros: u64) {
        let bucket = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_US.len());
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot for the `STATS` response.
    pub fn snapshot(&self) -> StatsReply {
        StatsReply {
            epoch: self.epoch.load(Ordering::Relaxed),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            days_ingested: self.days_ingested.load(Ordering::Relaxed),
            commands: COMMAND_NAMES
                .iter()
                .zip(&self.commands)
                .map(|(&name, c)| {
                    (
                        name.to_string(),
                        CommandStats {
                            received: c.received.load(Ordering::Relaxed),
                            ok: c.ok.load(Ordering::Relaxed),
                            errors: c.errors.load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            rejected_connections: self.rejected_connections.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            retrain_failures: self.retrain_failures.load(Ordering::Relaxed),
            retrains: RetrainMode::ALL
                .iter()
                .zip(&self.retrains)
                .map(|(m, c)| (m.name().to_string(), c.load(Ordering::Relaxed)))
                .collect(),
            retrain_edges_changed: self.retrain_edges_changed.load(Ordering::Relaxed),
            retrain_rows_folded: self.retrain_rows_folded.load(Ordering::Relaxed),
            retrain_incremental_ms: self.retrain_incremental_ms.load(Ordering::Relaxed),
            snapshot_writes: self.snapshot_writes.load(Ordering::Relaxed),
            snapshot_write_failures: self.snapshot_write_failures.load(Ordering::Relaxed),
            snapshot_resumed: self.snapshot_resumed.load(Ordering::Relaxed),
            snapshot_rejects: RejectReason::ALL
                .iter()
                .zip(&self.snapshot_rejects)
                .map(|(r, c)| (r.name().to_string(), c.load(Ordering::Relaxed)))
                .collect(),
            ignored_observations: self.ignored_observations.load(Ordering::Relaxed),
            latency_counts: self
                .latency
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            rate_limited_requests: self.rate_limited.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            requests_json: self.requests_json.load(Ordering::Relaxed),
            requests_binary: self.requests_binary.load(Ordering::Relaxed),
            // Shard identity and fleet health come from daemon/router
            // context, not this registry; callers overwrite them.
            shard: None,
            shards: Vec::new(),
            drift_signal: f64::from_bits(self.drift_signal_bits.load(Ordering::Relaxed)),
            drift_triggers: self.drift_triggers.load(Ordering::Relaxed),
            drift_last_rebootstrap_epoch: self.drift_last_rebootstrap_epoch.load(Ordering::Relaxed),
            drift_seed_overlap: self.drift_seed_overlap.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = Metrics::new(1, 5);
        m.received(Command::Estimate);
        m.received(Command::Estimate);
        m.ok(Command::Estimate);
        m.error(Command::Estimate);
        m.received(Command::Stats);
        m.ok(Command::Stats);
        m.reject_overload();
        m.reject_deadline();
        m.reject_connection();
        m.reject_connection();
        m.worker_panic();
        m.retrain_failure();
        m.retrain(
            RetrainMode::Incremental,
            &RetrainStats {
                edges_updated: 3,
                edges_added: 1,
                edges_removed: 1,
                corr_ms: 2,
                hlm_fit_ms: 5,
                ..RetrainStats::default()
            },
        );
        m.retrain(RetrainMode::Incremental, &RetrainStats::default());
        m.retrain(RetrainMode::FullCold, &RetrainStats::default());
        m.set_epoch(7);
        m.set_days_ingested(6);
        m.snapshot_write();
        m.snapshot_write();
        m.snapshot_write_failure();
        m.set_snapshot_resumed(true);
        m.snapshot_reject(RejectReason::BadChecksum);
        m.snapshot_reject(RejectReason::BadChecksum);
        m.snapshot_reject(RejectReason::ConfigMismatch);
        m.add_ignored_observations(3);
        m.rate_limited();
        m.rate_limited();
        m.conn_opened();
        m.conn_opened();
        m.conn_opened();
        m.conn_closed();
        m.codec_request(Codec::Json);
        m.codec_request(Codec::Binary);
        m.codec_request(Codec::Binary);
        m.received(Command::EstimateBatch);
        m.ok(Command::EstimateBatch);
        m.set_drift(&crowdspeed::drift::DriftState {
            last_signal: 0.375,
            triggers: 2,
            days_since_anchor: 1,
            last_rebootstrap_epoch: 6,
            last_seed_overlap: 3,
        });
        let snap = m.snapshot();
        assert_eq!(snap.drift_signal, 0.375);
        assert_eq!(snap.drift_triggers, 2);
        assert_eq!(snap.drift_last_rebootstrap_epoch, 6);
        assert_eq!(snap.drift_seed_overlap, 3);
        assert_eq!(snap.rate_limited_requests, 2);
        assert_eq!(snap.open_connections, 2);
        assert_eq!(m.open_connections(), 2);
        assert_eq!(snap.requests_json, 1);
        assert_eq!(snap.requests_binary, 2);
        let batch = &snap.commands[Command::EstimateBatch as usize];
        assert_eq!(batch.0, "estimate_batch");
        assert_eq!((batch.1.received, batch.1.ok, batch.1.errors), (1, 1, 0));
        assert_eq!(snap.shard, None);
        assert!(snap.shards.is_empty());
        assert_eq!(snap.epoch, 7);
        assert_eq!(snap.days_ingested, 6);
        assert_eq!(snap.snapshot_writes, 2);
        assert_eq!(snap.snapshot_write_failures, 1);
        assert_eq!(snap.snapshot_resumed, 1);
        assert_eq!(snap.ignored_observations, 3);
        let reject = |name: &str| {
            snap.snapshot_rejects
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
        };
        assert_eq!(reject("bad_checksum"), Some(2));
        assert_eq!(reject("config_mismatch"), Some(1));
        assert_eq!(reject("io"), Some(0));
        let est = &snap.commands[Command::Estimate as usize];
        assert_eq!(est.0, "estimate");
        assert_eq!((est.1.received, est.1.ok, est.1.errors), (2, 1, 1));
        let stats = &snap.commands[Command::Stats as usize];
        assert_eq!((stats.1.received, stats.1.ok, stats.1.errors), (1, 1, 0));
        assert_eq!(snap.rejected_overload, 1);
        assert_eq!(snap.rejected_deadline, 1);
        assert_eq!(snap.rejected_connections, 2);
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.retrain_failures, 1);
        let retrain = |name: &str| {
            snap.retrains
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
        };
        assert_eq!(retrain("incremental"), Some(2));
        assert_eq!(retrain("full_cold"), Some(1));
        assert_eq!(retrain("full_reanchor"), Some(0));
        assert_eq!(snap.retrain_edges_changed, 5);
        assert_eq!(snap.retrain_incremental_ms, 7);
    }

    #[test]
    fn latency_histogram_buckets_by_bound() {
        let m = Metrics::new(1, 0);
        m.observe_latency_us(10); // first bucket (<= 50)
        m.observe_latency_us(50); // first bucket boundary is inclusive
        m.observe_latency_us(51); // second bucket
        m.observe_latency_us(u64::MAX); // overflow bucket
        let counts = m.snapshot().latency_counts;
        assert_eq!(counts.len(), LATENCY_BUCKET_BOUNDS_US.len() + 1);
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 1);
        assert_eq!(*counts.last().unwrap(), 1);
        assert_eq!(counts.iter().sum::<u64>(), 4);
    }
}
