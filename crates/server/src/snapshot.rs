//! Persistent model snapshots: the on-disk format, atomic writes, and
//! the newest-valid-first resume scan.
//!
//! A snapshot file captures one published [`crate::state::ModelEpoch`]
//! together with everything the trainer needs to keep going — the day
//! history and the full online correlation accumulator — so a restarted
//! daemon serves its first `ESTIMATE` **bit-identically** to the
//! process that wrote the file, and further `INGEST_DAY`s continue the
//! exact same model trajectory.
//!
//! # File format
//!
//! ```text
//! ┌──────────────┬─────────────┬──────────────────┬──────────────────┬───────────────┐
//! │ magic "CSSN" │ version u16 │ config_hash u64  │ payload_len u64  │ checksum u64  │
//! └──────────────┴─────────────┴──────────────────┴──────────────────┴───────────────┘
//! ┌───────────────────────────────────────────────────────────────────────────────────┐
//! │ payload: epoch u64 | slots_per_day | day history | OnlineCorrelation | estimator   │
//! │          | context flag [+ graph] | drift state (5 × u64)                          │
//! └───────────────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian (matching `trafficsim::snapshot`,
//! whose field codec carries each history day). The checksum is
//! FNV-1a-64 over the payload bytes; `config_hash` is FNV-1a-64 over
//! the canonical encoding of every input that shapes the model (graph
//! size, slot clock, seed set, correlation + estimator configuration —
//! see [`config_hash`]), so a daemon started with different settings
//! refuses the file instead of silently serving the wrong model.
//!
//! # Atomicity and retention
//!
//! [`write_snapshot`] writes to a dot-prefixed temp file in the target
//! directory and `rename`s it into place — a crash mid-write leaves at
//! worst a temp file, never a half-written `.csnap` — then prunes all
//! but the newest `keep` snapshots. File names embed the epoch
//! zero-padded to 20 digits, so lexicographic order **is** epoch order.
//!
//! # Fallback policy
//!
//! [`load_newest`] scans newest-first and returns the first file that
//! passes every check. Each rejected file is reported through a typed
//! [`RejectReason`] (surfaced as the `snapshot_rejected_*` family in
//! `STATS`); when nothing survives, the daemon falls back to a full
//! retrain. A corrupt snapshot can cost startup time, never
//! correctness.

use crate::state::TrainState;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use crowdspeed::codec;
use crowdspeed::online::OnlineCorrelation;
use crowdspeed::prelude::*;
use roadnet::RoadId;
use std::io;
use std::path::{Path, PathBuf};
use trafficsim::{SlotClock, SpeedField};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"CSSN";

/// Format version written by this build. Version 2 added the frozen
/// training context graph after the estimator (deduplicated to one
/// flag byte when it equals the estimator's live graph); version 3
/// appended the drift-adaptation state (signal, trigger clock,
/// rebootstrap epoch, seed overlap) after the context. Older versions
/// are refused with [`RejectReason::BadVersion`] and the daemon falls
/// back to a clean retrain.
pub const SNAPSHOT_VERSION: u16 = 3;

/// Extension of snapshot files (`epoch-<epoch>.csnap`).
pub const SNAPSHOT_EXT: &str = "csnap";

/// magic + version + config_hash + payload_len + checksum.
const HEADER_LEN: usize = 4 + 2 + 8 + 8 + 8;

/// Why a snapshot file was refused during the resume scan. Every
/// reason maps to a stable metrics name so operators can tell a stale
/// config apart from disk rot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The file could not be read at all.
    Io = 0,
    /// The file does not start with `CSSN`.
    BadMagic = 1,
    /// The header names a format version this build does not speak.
    BadVersion = 2,
    /// The file is shorter than its header or declared payload.
    Truncated = 3,
    /// The payload checksum does not match (disk rot, torn write).
    BadChecksum = 4,
    /// The snapshot was written under a different model configuration.
    ConfigMismatch = 5,
    /// The payload passed the checksum but decoded to an invalid model.
    Decode = 6,
}

impl RejectReason {
    /// Every reason, in metrics order (index = discriminant).
    pub const ALL: [RejectReason; 7] = [
        RejectReason::Io,
        RejectReason::BadMagic,
        RejectReason::BadVersion,
        RejectReason::Truncated,
        RejectReason::BadChecksum,
        RejectReason::ConfigMismatch,
        RejectReason::Decode,
    ];

    /// Stable metrics / wire name.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::Io => "io",
            RejectReason::BadMagic => "bad_magic",
            RejectReason::BadVersion => "bad_version",
            RejectReason::Truncated => "truncated",
            RejectReason::BadChecksum => "bad_checksum",
            RejectReason::ConfigMismatch => "config_mismatch",
            RejectReason::Decode => "decode",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// FNV-1a 64-bit over `bytes` — the dependency-free checksum shared by
/// the payload integrity check and [`config_hash`].
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Hashes every configuration input that shapes the trained model:
/// graph size, slot clock, the frozen seed set, the correlation-graph
/// thresholds, and the estimator configuration. `train_threads` is
/// deliberately excluded — the training pipeline is bit-identical
/// across thread counts, so a snapshot written by an 8-thread daemon
/// resumes cleanly on a 1-thread one.
pub fn config_hash(
    num_roads: usize,
    slots_per_day: usize,
    seeds: &[RoadId],
    corr_config: &CorrelationConfig,
    config: &EstimatorConfig,
) -> u64 {
    let mut buf = BytesMut::new();
    codec::put_usize(&mut buf, num_roads);
    codec::put_usize(&mut buf, slots_per_day);
    codec::put_road_slice(&mut buf, seeds);
    codec::encode_correlation_config(corr_config, &mut buf);
    codec::encode_trend_model_config(&config.trend, &mut buf);
    codec::encode_engine(&config.engine, &mut buf);
    codec::encode_hlm_config(&config.hlm, &mut buf);
    fnv1a(&buf)
}

/// [`config_hash`] for a live [`TrainState`] (the daemon computes it
/// once at spawn and stamps every snapshot it writes with it).
pub fn train_state_hash(train: &TrainState) -> u64 {
    config_hash(
        train.graph().num_roads(),
        train.clock().slots_per_day,
        train.seeds(),
        train.online().config(),
        train.config(),
    )
}

/// Everything a resumed daemon restores from a snapshot file.
pub struct SnapshotPayload {
    /// Model epoch the file captured (the resumed `STATS` gauge).
    pub epoch: u64,
    /// Slot discretisation of the day history.
    pub clock: SlotClock,
    /// Full day history, bootstrap window plus every ingested day.
    pub days: Vec<SpeedField>,
    /// The online correlation accumulator, counters intact.
    pub online: OnlineCorrelation,
    /// The published estimator, decoded ready to serve.
    pub estimator: TrafficEstimator,
    /// The frozen training context the writing process was on — what
    /// keeps a resumed daemon's `INGEST_DAY` trajectory bit-identical
    /// to a never-restarted one's.
    pub context: CorrelationGraph,
    /// Drift-adaptation state (signal, trigger clock, rebootstrap
    /// epoch, seed overlap) — carried so a restart neither forgets a
    /// pending cooldown nor re-fires a trigger it already served.
    pub drift: DriftState,
}

/// Serialises one epoch (header + checksummed payload).
///
/// The trailing context section is deduplicated: when `context`
/// encodes byte-identically to the estimator's live correlation graph
/// (fresh bootstrap, post re-anchor) a single `0` flag byte stands in
/// for it; otherwise a `1` flag precedes the explicit graph.
#[allow(clippy::too_many_arguments)]
pub fn encode_snapshot(
    epoch: u64,
    clock: SlotClock,
    days: &[SpeedField],
    online: &OnlineCorrelation,
    estimator: &TrafficEstimator,
    context: &CorrelationGraph,
    drift: &DriftState,
    config_hash: u64,
) -> Bytes {
    let mut body = BytesMut::new();
    body.put_u64_le(epoch);
    codec::put_usize(&mut body, clock.slots_per_day);
    body.put_u32_le(days.len() as u32);
    for day in days {
        let field = trafficsim::snapshot::encode_field(day);
        body.put_u32_le(field.len() as u32);
        body.put_slice(&field);
    }
    online.encode_into(&mut body);
    estimator.encode_snapshot_into(&mut body);
    let mut ctx_bytes = BytesMut::new();
    codec::encode_correlation_graph(context, &mut ctx_bytes);
    let mut live_bytes = BytesMut::new();
    codec::encode_correlation_graph(estimator.trend_model().correlation(), &mut live_bytes);
    if ctx_bytes == live_bytes {
        body.put_u8(0);
    } else {
        body.put_u8(1);
        body.put_slice(&ctx_bytes);
    }
    body.put_u64_le(drift.last_signal.to_bits());
    body.put_u64_le(drift.triggers);
    body.put_u64_le(drift.days_since_anchor);
    body.put_u64_le(drift.last_rebootstrap_epoch);
    body.put_u64_le(drift.last_seed_overlap);
    let mut out = BytesMut::with_capacity(HEADER_LEN + body.len());
    out.put_slice(SNAPSHOT_MAGIC);
    out.put_u16_le(SNAPSHOT_VERSION);
    out.put_u64_le(config_hash);
    out.put_u64_le(body.len() as u64);
    out.put_u64_le(fnv1a(&body));
    out.put_slice(&body);
    out.freeze()
}

/// Validates and decodes a snapshot file image. Every failure mode
/// maps to exactly one [`RejectReason`], checked in header order:
/// length, magic, version, declared payload length, checksum, config
/// hash, and finally the payload decode itself.
pub fn decode_snapshot(bytes: &[u8], expected_hash: u64) -> Result<SnapshotPayload, RejectReason> {
    if bytes.len() < HEADER_LEN {
        return Err(RejectReason::Truncated);
    }
    let mut header = &bytes[..HEADER_LEN];
    if &header[..4] != SNAPSHOT_MAGIC {
        return Err(RejectReason::BadMagic);
    }
    header.advance(4);
    let version = header.get_u16_le();
    if version != SNAPSHOT_VERSION {
        return Err(RejectReason::BadVersion);
    }
    let file_hash = header.get_u64_le();
    let payload_len = header.get_u64_le() as usize;
    let checksum = header.get_u64_le();
    let payload = &bytes[HEADER_LEN..];
    if payload.len() < payload_len {
        return Err(RejectReason::Truncated);
    }
    let payload = &payload[..payload_len];
    if fnv1a(payload) != checksum {
        return Err(RejectReason::BadChecksum);
    }
    if file_hash != expected_hash {
        return Err(RejectReason::ConfigMismatch);
    }
    decode_payload(payload).map_err(|_| RejectReason::Decode)
}

fn decode_payload(payload: &[u8]) -> Result<SnapshotPayload, codec::DecodeError> {
    use codec::DecodeError;
    let mut buf = payload;
    let epoch = codec::get_u64(&mut buf)?;
    let slots_per_day = codec::get_usize(&mut buf)?;
    let clock = SlotClock { slots_per_day };
    let num_days = codec::get_u32(&mut buf)? as usize;
    let mut days: Vec<SpeedField> = Vec::with_capacity(num_days.min(4096));
    for _ in 0..num_days {
        let len = codec::get_u32(&mut buf)? as usize;
        if buf.remaining() < len {
            return Err(DecodeError::Truncated);
        }
        let day = trafficsim::snapshot::decode_field(&buf[..len])?;
        buf.advance(len);
        if day.num_slots() != slots_per_day {
            return Err(DecodeError::Corrupt(format!(
                "history day spans {} slots, clock says {slots_per_day}",
                day.num_slots()
            )));
        }
        if days
            .first()
            .is_some_and(|first| day.num_roads() != first.num_roads())
        {
            return Err(DecodeError::Corrupt(format!(
                "history day spans {} roads, first day {}",
                day.num_roads(),
                days[0].num_roads()
            )));
        }
        days.push(day);
    }
    let online = OnlineCorrelation::decode_from(&mut buf)?;
    let estimator = TrafficEstimator::decode_snapshot_from(&mut buf)?;
    let context = match codec::get_u8(&mut buf)? {
        0 => estimator.trend_model().correlation().clone(),
        1 => codec::decode_correlation_graph(&mut buf)?,
        flag => return Err(DecodeError::Corrupt(format!("unknown context flag {flag}"))),
    };
    let last_signal = f64::from_bits(codec::get_u64(&mut buf)?);
    if !last_signal.is_finite() || !(0.0..=1.0).contains(&last_signal) {
        return Err(DecodeError::Corrupt(format!(
            "drift signal {last_signal} outside [0, 1]"
        )));
    }
    let drift = DriftState {
        last_signal,
        triggers: codec::get_u64(&mut buf)?,
        days_since_anchor: codec::get_u64(&mut buf)?,
        last_rebootstrap_epoch: codec::get_u64(&mut buf)?,
        last_seed_overlap: codec::get_u64(&mut buf)?,
    };
    if buf.remaining() != 0 {
        return Err(DecodeError::Corrupt(format!(
            "{} trailing bytes after the drift state",
            buf.remaining()
        )));
    }
    Ok(SnapshotPayload {
        epoch,
        clock,
        days,
        online,
        estimator,
        context,
        drift,
    })
}

/// The canonical file name for an epoch: zero-padded so lexicographic
/// order equals epoch order.
pub fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("epoch-{epoch:020}.{SNAPSHOT_EXT}"))
}

/// Atomically persists an encoded snapshot: temp file + `rename`, then
/// prunes all but the newest `keep` snapshots (best-effort). Returns
/// the final path.
pub fn write_snapshot(dir: &Path, keep: usize, epoch: u64, bytes: &[u8]) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = snapshot_path(dir, epoch);
    let tmp = dir.join(format!(".epoch-{epoch:020}.{SNAPSHOT_EXT}.tmp"));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, &path)?;
    let files = list_snapshots(dir);
    if files.len() > keep.max(1) {
        for stale in &files[..files.len() - keep.max(1)] {
            let _ = std::fs::remove_file(stale);
        }
    }
    Ok(path)
}

/// Snapshot files in `dir`, oldest first (a missing directory is an
/// empty list, not an error — a fresh `--snapshot-dir` means a fresh
/// train, nothing to reject).
pub fn list_snapshots(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|ext| ext == SNAPSHOT_EXT)
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("epoch-"))
        })
        .collect();
    files.sort();
    files
}

/// A successfully resumed snapshot.
pub struct LoadOutcome {
    /// The decoded model state.
    pub payload: SnapshotPayload,
    /// The file it came from.
    pub path: PathBuf,
}

/// Scans `dir` newest-first and returns the first snapshot that passes
/// every check. Each refused file is reported through `on_reject`
/// before the scan moves to the next-older candidate; `None` means the
/// caller must retrain from scratch.
pub fn load_newest(
    dir: &Path,
    expected_hash: u64,
    mut on_reject: impl FnMut(RejectReason, &Path),
) -> Option<LoadOutcome> {
    for path in list_snapshots(dir).iter().rev() {
        match std::fs::read(path) {
            Err(_) => on_reject(RejectReason::Io, path),
            Ok(bytes) => match decode_snapshot(&bytes, expected_hash) {
                Ok(payload) => {
                    return Some(LoadOutcome {
                        payload,
                        path: path.clone(),
                    })
                }
                Err(reason) => on_reject(reason, path),
            },
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn config_hash_ignores_train_threads() {
        let seeds = [RoadId(1), RoadId(5)];
        let corr = CorrelationConfig::default();
        let a = EstimatorConfig::default();
        let mut b = a.clone();
        b.train_threads = 7;
        assert_eq!(
            config_hash(10, 24, &seeds, &corr, &a),
            config_hash(10, 24, &seeds, &corr, &b)
        );
        let mut c = a.clone();
        c.hlm.lambda_city += 1.0;
        assert_ne!(
            config_hash(10, 24, &seeds, &corr, &a),
            config_hash(10, 24, &seeds, &corr, &c)
        );
        assert_ne!(
            config_hash(10, 24, &seeds, &corr, &a),
            config_hash(11, 24, &seeds, &corr, &a)
        );
    }

    #[test]
    fn header_rejections_map_to_typed_reasons() {
        assert!(matches!(
            decode_snapshot(b"CSS", 0),
            Err(RejectReason::Truncated)
        ));
        let mut bytes = vec![0u8; HEADER_LEN];
        bytes[..4].copy_from_slice(b"NOPE");
        assert!(matches!(
            decode_snapshot(&bytes, 0),
            Err(RejectReason::BadMagic)
        ));
        let mut bytes = vec![0u8; HEADER_LEN];
        bytes[..4].copy_from_slice(SNAPSHOT_MAGIC);
        bytes[4] = 99; // version 99
        assert!(matches!(
            decode_snapshot(&bytes, 0),
            Err(RejectReason::BadVersion)
        ));
    }

    #[test]
    fn snapshot_file_names_sort_by_epoch() {
        let dir = Path::new("/tmp");
        let a = snapshot_path(dir, 9);
        let b = snapshot_path(dir, 10);
        let c = snapshot_path(dir, 9_999_999_999);
        assert!(a < b && b < c);
    }

    #[test]
    fn reject_reason_names_align_with_indices() {
        for (i, r) in RejectReason::ALL.iter().enumerate() {
            assert_eq!(*r as usize, i);
        }
        assert_eq!(RejectReason::ConfigMismatch.name(), "config_mismatch");
    }
}
