//! The shard fleet supervisor: spawns one `crowdspeedd` worker process
//! per shard, watches each for exits, and restarts crashed workers
//! after a backoff.
//!
//! The supervisor is deliberately dumb: it knows nothing about the
//! wire protocol or model state. A worker that dies is restarted with
//! the same argv; recovering its model is the worker's own job (the
//! snapshot-resume path), which keeps the crash story identical
//! whether a worker dies under a supervisor or under systemd. The
//! router reads [`FleetStatus`] only for the `restarts` column of its
//! fleet-wide `STATS` merge — liveness is always probed over the wire,
//! so a fleet managed by someone else degrades identically.

use crowdspeed::correlation::{CorrelationConfig, CorrelationGraph};
use crowdspeed::shard::ShardPlan;
use parking_lot::Mutex;
use roadnet::RoadGraph;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use trafficsim::{HistoricalData, HistoryStats};

/// How to launch one shard worker.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Executable to run (typically `std::env::current_exe()`).
    pub program: PathBuf,
    /// Full argv after the program name.
    pub args: Vec<String>,
}

/// One worker's supervision state, as seen by [`FleetStatus::workers`].
#[derive(Debug, Clone, Default)]
pub struct WorkerStatus {
    /// Whether the child process is currently running.
    pub up: bool,
    /// OS pid of the running child (`None` while down).
    pub pid: Option<u32>,
    /// Times the supervisor respawned this worker after an unexpected
    /// exit (the initial spawn is not a restart).
    pub restarts: u64,
    /// Exit code of the most recent death (`None` if signal-killed or
    /// never exited).
    pub last_exit: Option<i32>,
}

/// Shared, lock-protected view of every worker's supervision state.
pub struct FleetStatus {
    workers: Mutex<Vec<WorkerStatus>>,
}

impl FleetStatus {
    /// Snapshot of every worker's state, indexed by shard.
    pub fn workers(&self) -> Vec<WorkerStatus> {
        self.workers.lock().clone()
    }
}

/// Per-worker slot shared between a monitor thread and [`Fleet`].
struct WorkerSlot {
    child: Mutex<Option<Child>>,
}

/// A supervised fleet of shard worker processes.
pub struct Fleet {
    status: Arc<FleetStatus>,
    slots: Vec<Arc<WorkerSlot>>,
    stop: Arc<AtomicBool>,
    monitors: Vec<std::thread::JoinHandle<()>>,
}

impl Fleet {
    /// Spawns one child per spec and a monitor thread supervising each.
    /// A child that exits while the fleet is running is respawned after
    /// `restart_backoff`; [`Fleet::shutdown`] kills all children and
    /// joins the monitors.
    pub fn spawn(specs: Vec<WorkerSpec>, restart_backoff: Duration) -> Fleet {
        let status = Arc::new(FleetStatus {
            workers: Mutex::new(vec![WorkerStatus::default(); specs.len()]),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let mut slots = Vec::with_capacity(specs.len());
        let mut monitors = Vec::with_capacity(specs.len());
        for (index, spec) in specs.into_iter().enumerate() {
            let slot = Arc::new(WorkerSlot {
                child: Mutex::new(None),
            });
            slots.push(Arc::clone(&slot));
            let status = Arc::clone(&status);
            let stop = Arc::clone(&stop);
            let monitor = std::thread::Builder::new()
                .name(format!("crowdspeed-fleet-{index}"))
                .spawn(move || monitor_worker(index, spec, slot, status, stop, restart_backoff))
                .expect("spawn fleet monitor thread");
            monitors.push(monitor);
        }
        Fleet {
            status,
            slots,
            stop,
            monitors,
        }
    }

    /// Handle for reading worker states (the router holds one to fill
    /// the `restarts` column of its fleet-wide `STATS`).
    pub fn status_handle(&self) -> Arc<FleetStatus> {
        Arc::clone(&self.status)
    }

    /// Stops supervision, kills every child, and joins the monitors.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for slot in &self.slots {
            if let Some(child) = slot.child.lock().as_mut() {
                let _ = child.kill();
            }
        }
        for monitor in self.monitors.drain(..) {
            let _ = monitor.join();
        }
        for slot in &self.slots {
            if let Some(mut child) = slot.child.lock().take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for slot in &self.slots {
            if let Some(mut child) = slot.child.lock().take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        for monitor in self.monitors.drain(..) {
            let _ = monitor.join();
        }
    }
}

/// One worker's supervision loop: spawn, poll for exit, respawn after
/// backoff — until the fleet's stop flag goes up.
fn monitor_worker(
    index: usize,
    spec: WorkerSpec,
    slot: Arc<WorkerSlot>,
    status: Arc<FleetStatus>,
    stop: Arc<AtomicBool>,
    restart_backoff: Duration,
) {
    let mut first = true;
    while !stop.load(Ordering::SeqCst) {
        if !first {
            // Backoff in short ticks so shutdown is never stuck
            // waiting out a long restart delay.
            let waited = std::time::Instant::now();
            while waited.elapsed() < restart_backoff {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(20).min(restart_backoff));
            }
            status.workers.lock()[index].restarts += 1;
        }
        first = false;
        let spawned = Command::new(&spec.program)
            .args(&spec.args)
            .stdin(Stdio::null())
            .spawn();
        let child = match spawned {
            Ok(child) => child,
            Err(_) => {
                let mut workers = status.workers.lock();
                workers[index].up = false;
                workers[index].pid = None;
                continue;
            }
        };
        {
            let mut workers = status.workers.lock();
            workers[index].up = true;
            workers[index].pid = Some(child.id());
        }
        *slot.child.lock() = Some(child);
        // Poll instead of a blocking wait(): the lock must stay free
        // so Fleet::shutdown can kill the child from another thread.
        let exit = loop {
            let mut guard = slot.child.lock();
            match guard.as_mut() {
                Some(child) => match child.try_wait() {
                    Ok(Some(exit)) => {
                        guard.take();
                        break Some(exit);
                    }
                    Ok(None) => {}
                    Err(_) => {
                        guard.take();
                        break None;
                    }
                },
                // shutdown() reaped it first.
                None => break None,
            };
            drop(guard);
            std::thread::sleep(Duration::from_millis(20));
        };
        let mut workers = status.workers.lock();
        workers[index].up = false;
        workers[index].pid = None;
        workers[index].last_exit = exit.and_then(|e| e.code());
    }
}

/// Computes the fleet's shard plan from a dataset's *bootstrap* inputs:
/// the correlation graph built from the historical training window.
///
/// The plan must be a pure function of the dataset so the router and
/// every worker — including one restarted days later — derive the
/// identical plan independently. Deriving it from an evolved online
/// correlation state would fracture the fleet on the first restart;
/// mixed plans are caught by the fingerprint cross-check in the
/// router's `STATS` probe.
pub fn dataset_plan(
    graph: &RoadGraph,
    history: &HistoricalData,
    corr_config: &CorrelationConfig,
    shards: usize,
) -> crowdspeed::Result<ShardPlan> {
    let stats = HistoryStats::compute(history);
    let corr = CorrelationGraph::build(graph, history, &stats, corr_config);
    ShardPlan::plan(graph, &corr, shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_restarts_a_killed_worker_and_shuts_down() {
        let spec = WorkerSpec {
            program: PathBuf::from("/bin/sleep"),
            args: vec!["60".to_string()],
        };
        let fleet = Fleet::spawn(vec![spec], Duration::from_millis(50));
        let status = fleet.status_handle();
        let wait_for = |pred: &dyn Fn(&WorkerStatus) -> bool| -> WorkerStatus {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            loop {
                let w = status.workers()[0].clone();
                if pred(&w) {
                    return w;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "timed out waiting on worker state, last {w:?}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        };
        let up = wait_for(&|w| w.up);
        let first_pid = up.pid.expect("running worker has a pid");
        assert_eq!(up.restarts, 0);

        // Kill the child out from under the supervisor; it must come
        // back with a new pid and a counted restart.
        unsafe {
            libc_kill(first_pid as i32);
        }
        let back = wait_for(&|w| w.up && w.pid != Some(first_pid));
        assert_eq!(back.restarts, 1);

        fleet.shutdown();
        // After shutdown nothing restarts; the process slot is empty.
        let w = status.workers()[0].clone();
        assert!(!w.up);
    }

    /// SIGKILL via the libc syscall wrapper (no libc crate dependency:
    /// `kill(2)` through `std::process` would need a shell).
    unsafe fn libc_kill(pid: i32) {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        kill(pid, 9);
    }
}
