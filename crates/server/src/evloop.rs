//! Readiness polling for the event-driven connection layer.
//!
//! [`Poller`] is a thin wrapper over the OS readiness primitive: on
//! Linux it uses `epoll(7)` through hand-written FFI (the workspace
//! vendors no `libc` crate), everywhere else — and on Linux when
//! `CROWDSPEED_EVLOOP=poll` is set, which is how the test suite covers
//! both backends on one platform — it falls back to portable
//! `poll(2)`. Both backends are level-triggered: an event keeps firing
//! until the caller drains the socket, so the daemon never needs to
//! loop-to-EAGAIN inside one wakeup.
//!
//! The caller owns the token space. Tokens are plain `usize` values
//! carried back verbatim in [`Event`]; hangups and socket errors are
//! folded into `readable` so the connection logic discovers them the
//! POSIX way (a zero-byte read or an `Err`), keeping one close path.

use std::ffi::c_int;
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Which readiness transitions a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or hit EOF/error).
    pub readable: bool,
    /// Wake when the fd can accept writes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read+write interest — a connection with a pending reply.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// Readable, hung up, or errored.
    pub readable: bool,
    /// Writable without blocking.
    pub writable: bool,
}

/// Readiness backend selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll(7)`; scales to tens of thousands of idle fds.
    Epoll,
    /// POSIX `poll(2)`; O(registered fds) per wait, runs anywhere.
    Poll,
}

enum Inner {
    #[cfg(target_os = "linux")]
    Epoll(epoll::EpollSet),
    Poll(pollset::PollSet),
}

/// A set of registered fds plus the OS handle used to wait on them.
pub struct Poller {
    inner: Inner,
}

impl Poller {
    /// Opens the platform-default backend (epoll on Linux, poll
    /// elsewhere), honouring a `CROWDSPEED_EVLOOP=poll|epoll` override.
    pub fn new() -> io::Result<Poller> {
        match std::env::var("CROWDSPEED_EVLOOP") {
            Ok(name) if name == "poll" => Poller::with_backend(Backend::Poll),
            Ok(name) if name == "epoll" => Poller::with_backend(Backend::Epoll),
            Ok(name) => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("CROWDSPEED_EVLOOP must be \"poll\" or \"epoll\", got {name:?}"),
            )),
            Err(_) => {
                #[cfg(target_os = "linux")]
                {
                    Poller::with_backend(Backend::Epoll)
                }
                #[cfg(not(target_os = "linux"))]
                {
                    Poller::with_backend(Backend::Poll)
                }
            }
        }
    }

    /// Opens a specific backend; tests use this to cover both.
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        match backend {
            Backend::Poll => Ok(Poller {
                inner: Inner::Poll(pollset::PollSet::new()),
            }),
            #[cfg(target_os = "linux")]
            Backend::Epoll => Ok(Poller {
                inner: Inner::Epoll(epoll::EpollSet::new()?),
            }),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend requires Linux",
            )),
        }
    }

    /// The backend actually in use, for logs and STATS debugging.
    pub fn backend_name(&self) -> &'static str {
        match &self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(_) => "epoll",
            Inner::Poll(_) => "poll",
        }
    }

    /// Starts watching `fd` under `token`. The fd must stay open until
    /// [`Poller::deregister`]; registering the same fd twice is an
    /// error on both backends.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(set) => set.register(fd, token, interest),
            Inner::Poll(set) => set.register(fd, token, interest),
        }
    }

    /// Replaces the interest set (and token) of an already-registered
    /// fd — how a connection flips between read-only and read+write.
    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(set) => set.modify(fd, token, interest),
            Inner::Poll(set) => set.modify(fd, token, interest),
        }
    }

    /// Stops watching `fd`. Call before closing the fd: a closed fd
    /// silently vanishes from epoll but would poison the poll set.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(set) => set.deregister(fd),
            Inner::Poll(set) => set.deregister(fd),
        }
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = forever), appending notifications to
    /// `events` (which is cleared first). EINTR retries internally.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(set) => set.wait(events, timeout),
            Inner::Poll(set) => set.wait(events, timeout),
        }
    }
}

/// Converts an optional timeout to the millisecond convention shared
/// by `poll(2)` and `epoll_wait(2)`: `-1` blocks forever and sub-ms
/// waits round up so a nonzero timeout never busy-spins as zero.
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms.min(c_int::MAX as u128) as c_int
            }
        }
    }
}

fn last_errno_is_eintr(err: &io::Error) -> bool {
    err.kind() == io::ErrorKind::Interrupted
}

/// Raises the process `RLIMIT_NOFILE` soft limit to at least `min`
/// (clamped to the hard limit) and returns the resulting soft limit.
/// The 10k-connection sweeps need more than the usual 1024 default.
pub fn raise_nofile_limit(min: u64) -> io::Result<u64> {
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: c_int = 8;

    #[repr(C)]
    struct Rlimit {
        rlim_cur: u64,
        rlim_max: u64,
    }
    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }

    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= min {
        return Ok(lim.rlim_cur);
    }
    lim.rlim_cur = min.min(lim.rlim_max);
    if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(lim.rlim_cur)
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::{last_errno_is_eintr, timeout_ms, Event, Interest};
    use std::ffi::c_int;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    // The kernel ABI packs epoll_event on x86-64 only; other Linux
    // arches use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn mask(interest: Interest) -> u32 {
        let mut events = EPOLLRDHUP;
        if interest.readable {
            events |= EPOLLIN;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        events
    }

    pub struct EpollSet {
        epfd: RawFd,
        /// Scratch reused across waits; capacity bounds one batch, not
        /// the number of registered fds (level-triggering re-reports).
        buf: Vec<EpollEvent>,
    }

    impl EpollSet {
        pub fn new() -> io::Result<EpollSet> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EpollSet {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(
            &mut self,
            op: c_int,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            // The event argument must be non-null on kernels older
            // than 2.6.9; passing one is harmless everywhere.
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READABLE)
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let ms = timeout_ms(timeout);
            loop {
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        ms,
                    )
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if last_errno_is_eintr(&err) {
                        continue;
                    }
                    return Err(err);
                }
                for ev in &self.buf[..n as usize] {
                    let bits = { ev.events };
                    let data = { ev.data };
                    events.push(Event {
                        token: data as usize,
                        readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                        writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                    });
                }
                return Ok(());
            }
        }
    }

    impl Drop for EpollSet {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

mod pollset {
    use super::{last_errno_is_eintr, timeout_ms, Event, Interest};
    use std::ffi::{c_int, c_short};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    #[cfg(target_os = "linux")]
    type NfdsT = std::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = std::ffi::c_uint;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    }

    fn mask(interest: Interest) -> c_short {
        let mut events = 0;
        if interest.readable {
            events |= POLLIN;
        }
        if interest.writable {
            events |= POLLOUT;
        }
        events
    }

    /// Registration table; `wait` rebuilds the pollfd array each call,
    /// which keeps registration O(1) and is fine at poll(2)'s scale.
    pub struct PollSet {
        entries: Vec<(RawFd, usize, Interest)>,
    }

    impl PollSet {
        pub fn new() -> PollSet {
            PollSet {
                entries: Vec::new(),
            }
        }

        fn position(&self, fd: RawFd) -> Option<usize> {
            self.entries.iter().position(|&(f, _, _)| f == fd)
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            if self.position(fd).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("fd {fd} already registered"),
                ));
            }
            self.entries.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let i = self.position(fd).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("fd {fd} not registered"))
            })?;
            self.entries[i] = (fd, token, interest);
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self.position(fd).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("fd {fd} not registered"))
            })?;
            self.entries.swap_remove(i);
            Ok(())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .entries
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: mask(interest),
                    revents: 0,
                })
                .collect();
            let ms = timeout_ms(timeout);
            loop {
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if last_errno_is_eintr(&err) {
                        continue;
                    }
                    return Err(err);
                }
                break;
            }
            for (pfd, &(_, token, _)) in fds.iter().zip(&self.entries) {
                let r = pfd.revents;
                if r == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: r & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0,
                    writable: r & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    fn backends() -> Vec<Backend> {
        #[cfg(target_os = "linux")]
        {
            vec![Backend::Epoll, Backend::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Backend::Poll]
        }
    }

    #[test]
    fn readable_fires_when_peer_writes() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (mut a, b) = UnixStream::pair().unwrap();
            poller
                .register(b.as_raw_fd(), 7, Interest::READABLE)
                .unwrap();
            let mut events = Vec::new();

            // Nothing pending: a short wait times out empty.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                events.is_empty(),
                "{}: spurious event",
                poller.backend_name()
            );

            a.write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{}", poller.backend_name());
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);

            // Level-triggered: still readable until drained.
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 7 && e.readable));
            let mut buf = [0u8; 8];
            let n = b.try_clone().unwrap().read(&mut buf).unwrap();
            assert_eq!(n, 1);
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty());
        }
    }

    #[test]
    fn writable_interest_and_modify() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (a, _b) = UnixStream::pair().unwrap();
            // Read-only on an idle socket: quiet.
            poller
                .register(a.as_raw_fd(), 3, Interest::READABLE)
                .unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{}", poller.backend_name());
            // Flip to read+write: an empty send buffer reports writable.
            poller.modify(a.as_raw_fd(), 3, Interest::BOTH).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 3 && e.writable),
                "{}: no writable event",
                poller.backend_name()
            );
        }
    }

    #[test]
    fn hangup_surfaces_as_readable() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (a, b) = UnixStream::pair().unwrap();
            poller
                .register(b.as_raw_fd(), 9, Interest::READABLE)
                .unwrap();
            drop(a);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 9 && e.readable),
                "{}: hangup not folded into readable",
                poller.backend_name()
            );
        }
    }

    #[test]
    fn deregister_silences_an_fd() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (mut a, b) = UnixStream::pair().unwrap();
            poller
                .register(b.as_raw_fd(), 1, Interest::READABLE)
                .unwrap();
            a.write_all(b"x").unwrap();
            poller.deregister(b.as_raw_fd()).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{}", poller.backend_name());
            // Deregistering twice is an error, not UB.
            assert!(poller.deregister(b.as_raw_fd()).is_err());
        }
    }

    #[test]
    fn timeout_expires_without_events() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (_a, b) = UnixStream::pair().unwrap();
            poller
                .register(b.as_raw_fd(), 0, Interest::READABLE)
                .unwrap();
            let start = Instant::now();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert!(events.is_empty());
            assert!(start.elapsed() >= Duration::from_millis(25));
        }
    }

    #[test]
    fn many_idle_fds_one_active() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let mut pairs = Vec::new();
            for i in 0..64 {
                let (a, b) = UnixStream::pair().unwrap();
                poller
                    .register(b.as_raw_fd(), i, Interest::READABLE)
                    .unwrap();
                pairs.push((a, b));
            }
            pairs[41].0.write_all(b"!").unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{}", poller.backend_name());
            assert_eq!(events[0].token, 41);
        }
    }

    #[test]
    fn raise_nofile_limit_is_monotonic() {
        let current = raise_nofile_limit(64).unwrap();
        assert!(current >= 64);
        // Asking for less than we already have keeps the higher limit.
        assert_eq!(raise_nofile_limit(1).unwrap(), current);
    }
}
