//! The `crowdspeed-router` front-end: speaks the daemon wire protocol
//! unchanged to clients, scatter-gathers each command across a fleet
//! of shard workers, and merges the answers.
//!
//! # Dataflow
//!
//! ```text
//!                        ┌──────────────┐  roads owned by shard 0  ┌──────────┐
//!   client ── ESTIMATE ─▶│    router    │─────────────────────────▶│ worker 0 │
//!            full reply◀─│  scatter +   │  roads owned by shard 1  ├──────────┤
//!                        │   reassemble │─────────────────────────▶│ worker 1 │
//!                        └──────────────┘            …             └──────────┘
//! ```
//!
//! Every worker ingests every day and trains the identical full model
//! (training is replicated; only *serving* is sharded), so reassembling
//! per-shard replies by road id reproduces the unsharded daemon's reply
//! byte for byte — the `router` integration suite pins this.
//!
//! Estimate scatters are pipelined: the router writes the request to
//! every involved shard link first, then collects replies in shard
//! order (one in-flight request per link), so fan-out latency is the
//! slowest shard's, not the sum. Clients may speak either codec; the
//! router answers each request in the codec it arrived in, and its
//! shard links speak [`RouterConfig::shard_client`]'s codec.
//!
//! # Degradation
//!
//! A shard the router cannot reach degrades by request shape:
//! road-filtered estimates answer the live shards' roads and list the
//! dead shard's roads in `unavailable` (NaN speeds at those positions);
//! requests that need every shard (all-roads estimates, `INGEST_DAY`)
//! answer a typed [`ErrorKind::ShardUnavailable`]. Liveness is probed
//! per request — there is no cached up/down state to go stale — and
//! the fleet supervisor (when present) restarts dead workers, so
//! `shard_unavailable` is always retryable.

use crate::daemon::{drain, error_response, respond, respond_with};
use crate::fleet::FleetStatus;
use crate::metrics::{Command, Metrics};
use crate::protocol::{
    read_frame_with_deadline, BatchItem, BatchOutcome, Codec, ErrorKind, EstimateReply, Request,
    Response, ShardHealth, StatsReply, WireError, BINARY_PROTOCOL_VERSION, DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
use crate::{Client, ClientConfig, ServerError};
use crowdspeed::shard::ShardPlan;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tunables for [`Router::spawn`].
pub struct RouterConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// One worker address per shard, indexed by shard.
    pub shard_addrs: Vec<String>,
    /// The fleet-wide shard plan (road → shard). Must be the same plan
    /// every worker was started with; mismatches surface as `plan_ok:
    /// false` in `STATS` and `BadRequest` refusals from workers.
    pub plan: ShardPlan,
    /// Frames declaring more payload than this are refused.
    pub max_frame_bytes: usize,
    /// Maximum simultaneous client connections.
    pub max_connections: usize,
    /// Per-frame read deadline for client connections (slow-loris
    /// defence), as in the daemon.
    pub frame_deadline_ms: Option<u64>,
    /// Timeout policy for router → shard links.
    pub shard_client: ClientConfig,
    /// Supervisor status, when the router also manages the fleet;
    /// fills the `restarts` column of the `STATS` breakdown.
    pub fleet: Option<Arc<FleetStatus>>,
}

impl RouterConfig {
    /// Config with daemon-like defaults for everything but the
    /// required topology.
    pub fn new(addr: String, shard_addrs: Vec<String>, plan: ShardPlan) -> RouterConfig {
        RouterConfig {
            addr,
            shard_addrs,
            plan,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_connections: 1024,
            frame_deadline_ms: Some(30_000),
            shard_client: ClientConfig::default(),
            fleet: None,
        }
    }
}

struct RouterShared {
    config: RouterConfig,
    metrics: Metrics,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
    fingerprint: u64,
}

/// A running scatter-gather router (see [`Router::spawn`]).
pub struct Router;

/// Handle to a spawned router: bound address and lifecycle control.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Binds the listener and starts the acceptor. Returns once the
    /// router is reachable; shard workers are dialled lazily per
    /// connection, so they may come up after the router does.
    pub fn spawn(config: RouterConfig) -> Result<RouterHandle, ServerError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let fingerprint = config.plan.fingerprint();
        let shared = Arc::new(RouterShared {
            metrics: Metrics::new(0, 0),
            shutdown: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            fingerprint,
            config,
        });
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("crowdspeed-router-accept".to_string())
            .spawn(move || accept_loop(listener, acceptor_shared))
            .expect("spawn router acceptor thread");
        Ok(RouterHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }
}

impl RouterHandle {
    /// The address the router is listening on (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the router to stop accepting and drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Signals shutdown and blocks until the acceptor and handlers
    /// exit.
    pub fn join(mut self) {
        self.shutdown();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until the router stops on its own (a `SHUTDOWN` frame).
    pub fn wait(mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

struct ConnGuard(Arc<RouterShared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<RouterShared>) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                handlers.retain(|h| !h.is_finished());
                let cap = shared.config.max_connections.max(1);
                if shared.active_conns.load(Ordering::SeqCst) >= cap {
                    shared.metrics.reject_connection();
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                    let _ = respond(
                        &mut stream,
                        &error_response(
                            ErrorKind::Overloaded,
                            format!("connection limit reached ({cap})"),
                        ),
                    );
                    continue;
                }
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("crowdspeed-router-conn".to_string())
                    .spawn(move || {
                        let _guard = ConnGuard(Arc::clone(&conn_shared));
                        handle_connection(stream, conn_shared);
                    });
                match spawned {
                    Ok(handle) => handlers.push(handle),
                    Err(_) => {
                        shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                        shared.metrics.reject_connection();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                handlers.retain(|h| !h.is_finished());
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Per-connection shard links, dialled lazily and poisoned (dropped)
/// on transport failure so the next request re-dials. Each client
/// connection gets its own links: the strict request/response framing
/// per link needs no cross-connection locking, and a dead shard is
/// re-probed per request rather than cached as down.
struct ShardLinks {
    clients: Vec<Option<Client>>,
}

impl ShardLinks {
    fn new(count: usize) -> ShardLinks {
        ShardLinks {
            clients: (0..count).map(|_| None).collect(),
        }
    }

    /// Connected client for shard `i`, dialling if needed. `None`
    /// means the shard is unreachable right now.
    fn get(&mut self, config: &RouterConfig, i: usize) -> Option<&mut Client> {
        if crate::failpoint::fire("shard_link") {
            // Injected link failure: indistinguishable from a dead
            // worker, which is the point.
            self.clients[i] = None;
            return None;
        }
        if self.clients[i].is_none() {
            self.clients[i] =
                Client::connect_with(config.shard_addrs[i].as_str(), config.shard_client.clone())
                    .ok();
        }
        self.clients[i].as_mut()
    }

    /// Drops shard `i`'s link after a transport failure.
    fn poison(&mut self, i: usize) {
        self.clients[i] = None;
    }
}

fn handle_connection(mut stream: TcpStream, shared: Arc<RouterShared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let shutdown = {
        let shared = Arc::clone(&shared);
        move || shared.shutdown.load(Ordering::SeqCst)
    };
    let frame_deadline = shared.config.frame_deadline_ms.map(Duration::from_millis);
    let mut links = ShardLinks::new(shared.config.shard_addrs.len());
    loop {
        let (version, payload) = match read_frame_with_deadline(
            &mut stream,
            shared.config.max_frame_bytes,
            &shutdown,
            frame_deadline,
        ) {
            Ok(frame) => frame,
            Err(WireError::Oversized { declared, max }) => {
                const DRAIN_CAP: usize = 1 << 20;
                if declared < DRAIN_CAP && drain(&mut stream, declared + 1, &shutdown) {
                    let _ = respond(
                        &mut stream,
                        &error_response(
                            ErrorKind::FrameTooLarge,
                            format!("frame of {declared} bytes exceeds limit of {max}"),
                        ),
                    );
                }
                return;
            }
            Err(_) => return,
        };
        let Some(codec) = Codec::from_version(version) else {
            let survived = respond(
                &mut stream,
                &error_response(
                    ErrorKind::UnsupportedVersion,
                    format!(
                        "speak version {PROTOCOL_VERSION} or {BINARY_PROTOCOL_VERSION}, \
                         got {version}"
                    ),
                ),
            );
            if survived {
                continue;
            }
            return;
        };
        let decoded = match codec {
            Codec::Json => Request::decode(&payload),
            Codec::Binary => Request::decode_binary(&payload),
        };
        let request = match decoded {
            Ok(request) => request,
            Err((kind, message)) => {
                if respond_with(&mut stream, codec, &error_response(kind, message)) {
                    continue;
                }
                return;
            }
        };
        let command = match &request {
            Request::Estimate { .. } => Command::Estimate,
            Request::EstimateBatch { .. } => Command::EstimateBatch,
            Request::IngestDay { .. } => Command::IngestDay,
            Request::Stats => Command::Stats,
            Request::Shutdown => Command::Shutdown,
            Request::Snapshot => Command::Snapshot,
        };
        shared.metrics.received(command);
        shared.metrics.codec_request(codec);
        let response = match request {
            Request::Estimate {
                slot_of_day,
                observations,
                deadline_ms,
                roads,
            } => route_estimate(
                &shared,
                &mut links,
                slot_of_day,
                observations,
                deadline_ms,
                roads,
            ),
            Request::EstimateBatch { items, deadline_ms } => {
                route_batch(&shared, &mut links, items, deadline_ms)
            }
            Request::IngestDay { rows } => route_ingest(&shared, &mut links, rows),
            Request::Stats => route_stats(&shared, &mut links),
            Request::Snapshot => route_snapshot(&shared, &mut links),
            Request::Shutdown => {
                // Stop the shards first (best-effort), then this
                // process: a fleet shut down through the router leaves
                // nothing orphaned.
                for shard in 0..shared.config.shard_addrs.len() {
                    if let Some(client) = links.get(&shared.config, shard) {
                        let _ = client.shutdown();
                    }
                }
                Response::ShuttingDown
            }
        };
        match &response {
            Response::Error { .. } => shared.metrics.error(command),
            _ => shared.metrics.ok(command),
        }
        let survived = respond_with(&mut stream, codec, &response);
        if matches!(response, Response::ShuttingDown) {
            shared.shutdown.store(true, Ordering::SeqCst);
            return;
        }
        if !survived {
            return;
        }
    }
}

/// `true` for failures that mean "this shard is unreachable" rather
/// than a typed answer from a healthy worker.
fn is_transport(e: &ServerError) -> bool {
    matches!(
        e,
        ServerError::Io(_) | ServerError::Wire(_) | ServerError::TimedOut
    )
}

fn shard_down(shard: usize) -> Response {
    error_response(
        ErrorKind::ShardUnavailable,
        format!("shard {shard} is unreachable; the fleet supervisor restarts dead workers"),
    )
}

/// The transport error standing in for "could not even dial the
/// shard"; [`is_transport`] treats it like any other dead link.
fn link_down() -> ServerError {
    ServerError::Io(std::io::Error::new(
        std::io::ErrorKind::NotConnected,
        "shard link unavailable",
    ))
}

/// Pipelined estimate fan-out: writes `make(shard)` to every shard in
/// `targets` first (one in-flight request per link), then collects
/// replies in shard order — fan-out latency is the slowest shard's,
/// not the sum. Replies already in flight are always collected, even
/// after another link has failed, so the strict request/response
/// framing per link stays in sync. Links are poisoned on every
/// failure except a typed remote error (which a healthy, in-sync
/// worker produced). Results come back sorted by shard index.
fn scatter_estimates(
    shared: &Arc<RouterShared>,
    links: &mut ShardLinks,
    targets: &[usize],
    mut make: impl FnMut(usize) -> Request,
) -> Vec<(usize, Result<EstimateReply, ServerError>)> {
    let mut outcomes: Vec<(usize, Result<EstimateReply, ServerError>)> =
        Vec::with_capacity(targets.len());
    let mut sent: Vec<usize> = Vec::with_capacity(targets.len());
    for &shard in targets {
        match links.get(&shared.config, shard) {
            Some(client) => match client.send(&make(shard)) {
                Ok(()) => sent.push(shard),
                Err(e) => {
                    links.poison(shard);
                    outcomes.push((shard, Err(e)));
                }
            },
            None => outcomes.push((shard, Err(link_down()))),
        }
    }
    for shard in sent {
        let raw = match links.clients[shard].as_mut() {
            Some(client) => client.recv(),
            None => Err(link_down()),
        };
        let result = match raw {
            Ok(Response::Estimate(reply)) => Ok(reply),
            Ok(Response::Error { kind, message }) => Err(ServerError::Remote { kind, message }),
            Ok(other) => Err(ServerError::UnexpectedResponse(format!(
                "mismatched response: {other:?}"
            ))),
            Err(e) => Err(e),
        };
        if matches!(&result, Err(e) if !matches!(e, ServerError::Remote { .. })) {
            links.poison(shard);
        }
        outcomes.push((shard, result));
    }
    outcomes.sort_by_key(|&(shard, _)| shard);
    outcomes
}

/// Scatter an estimate and reassemble the reply.
///
/// Without a road filter the reply must cover every road, so every
/// shard must answer — one dead shard fails the request with
/// [`ErrorKind::ShardUnavailable`]. With a filter, dead shards degrade
/// per road: their positions carry NaN/false and the road ids land in
/// `unavailable`.
fn route_estimate(
    shared: &Arc<RouterShared>,
    links: &mut ShardLinks,
    slot_of_day: usize,
    observations: Vec<(u32, f64)>,
    deadline_ms: Option<u64>,
    roads: Option<Vec<u32>>,
) -> Response {
    let plan = &shared.config.plan;
    let shards = shared.config.shard_addrs.len();
    match roads {
        None => {
            let n = plan.num_roads();
            let mut speeds = vec![f64::NAN; n];
            let mut p_up = vec![f64::NAN; n];
            let mut trends = vec![false; n];
            let mut epoch = 0u64;
            let mut ignored = 0u64;
            let targets: Vec<usize> = (0..shards)
                .filter(|&shard| !plan.owned_roads(shard).is_empty())
                .collect();
            // No filter on the wire: each worker serves all roads it
            // owns, ascending — same order as `plan.owned_roads`.
            let replies = scatter_estimates(shared, links, &targets, |_| Request::Estimate {
                slot_of_day,
                observations: observations.clone(),
                deadline_ms,
                roads: None,
            });
            for (shard, result) in replies {
                let owned = plan.owned_roads(shard);
                match result {
                    Ok(reply) => {
                        if reply.speeds.len() != owned.len() {
                            links.poison(shard);
                            return error_response(
                                ErrorKind::Internal,
                                format!(
                                    "shard {shard} answered {} roads, plan owns {}",
                                    reply.speeds.len(),
                                    owned.len()
                                ),
                            );
                        }
                        for (j, road) in owned.iter().enumerate() {
                            speeds[road.index()] = reply.speeds[j];
                            p_up[road.index()] = reply.p_up[j];
                            trends[road.index()] = reply.trends[j];
                        }
                        epoch = epoch.max(reply.epoch);
                        // Replicated training: every shard skips the
                        // same non-seed observations, so max = each.
                        ignored = ignored.max(reply.ignored_observations);
                    }
                    // A typed error from a healthy worker (e.g.
                    // NoObservations) holds for every shard — training
                    // is replicated — so pass it through unchanged.
                    Err(ServerError::Remote { kind, message }) => {
                        return error_response(kind, message)
                    }
                    Err(e) if is_transport(&e) => return shard_down(shard),
                    Err(e) => return error_response(ErrorKind::Internal, e.to_string()),
                }
            }
            Response::Estimate(EstimateReply {
                epoch,
                speeds,
                p_up,
                trends,
                ignored_observations: ignored,
                unavailable: Vec::new(),
            })
        }
        Some(filter) => {
            let n = plan.num_roads();
            if let Some(&bad) = filter.iter().find(|&&r| r as usize >= n) {
                return error_response(
                    ErrorKind::BadRequest,
                    format!("road {bad} outside the graph ({n} roads)"),
                );
            }
            if filter.is_empty() && observations.is_empty() {
                // Match the unsharded daemon, which refuses empty
                // observations before looking at the filter.
                return error_response(
                    ErrorKind::NoObservations,
                    "no observations provided".to_string(),
                );
            }
            // Group request positions by owning shard, preserving the
            // request's order within each group.
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); shards];
            for (pos, &road) in filter.iter().enumerate() {
                groups[plan.shard_of(roadnet::RoadId(road))].push(pos);
            }
            let mut speeds = vec![f64::NAN; filter.len()];
            let mut p_up = vec![f64::NAN; filter.len()];
            let mut trends = vec![false; filter.len()];
            let mut epoch = 0u64;
            let mut ignored = 0u64;
            let mut unavailable: Vec<u32> = Vec::new();
            let mut any_ok = filter.is_empty();
            let targets: Vec<usize> = groups
                .iter()
                .enumerate()
                .filter(|(_, group)| !group.is_empty())
                .map(|(shard, _)| shard)
                .collect();
            let member_roads_of =
                |shard: usize| -> Vec<u32> { groups[shard].iter().map(|&p| filter[p]).collect() };
            let replies = scatter_estimates(shared, links, &targets, |shard| Request::Estimate {
                slot_of_day,
                observations: observations.clone(),
                deadline_ms,
                roads: Some(member_roads_of(shard)),
            });
            for (shard, result) in replies {
                let group = &groups[shard];
                match result {
                    Ok(reply) if reply.speeds.len() == group.len() => {
                        for (j, &pos) in group.iter().enumerate() {
                            speeds[pos] = reply.speeds[j];
                            p_up[pos] = reply.p_up[j];
                            trends[pos] = reply.trends[j];
                        }
                        epoch = epoch.max(reply.epoch);
                        ignored = ignored.max(reply.ignored_observations);
                        any_ok = true;
                    }
                    Ok(_) => {
                        links.poison(shard);
                        return error_response(
                            ErrorKind::Internal,
                            format!("shard {shard} answered the wrong road count"),
                        );
                    }
                    // Typed errors come from a *healthy* worker
                    // (NoObservations, BadRequest, …) and would hit
                    // every shard the same way: pass through, don't
                    // degrade.
                    Err(ServerError::Remote { kind, message }) => {
                        return error_response(kind, message)
                    }
                    Err(_) => unavailable.extend(member_roads_of(shard)),
                }
            }
            if !any_ok {
                return error_response(
                    ErrorKind::ShardUnavailable,
                    "every shard owning the requested roads is unreachable".to_string(),
                );
            }
            Response::Estimate(EstimateReply {
                epoch,
                speeds,
                p_up,
                trends,
                ignored_observations: ignored,
                unavailable,
            })
        }
    }
}

/// `ESTIMATE_BATCH` through the router: each item is scattered across
/// the fleet exactly like a standalone `ESTIMATE` (same degradation
/// semantics per item), and a failing item becomes its typed
/// [`BatchOutcome::Error`] instead of sinking its neighbours. The
/// batch-level deadline applies to every item's scatter.
fn route_batch(
    shared: &Arc<RouterShared>,
    links: &mut ShardLinks,
    items: Vec<BatchItem>,
    deadline_ms: Option<u64>,
) -> Response {
    let outcomes = items
        .into_iter()
        .map(|item| {
            match route_estimate(
                shared,
                links,
                item.slot_of_day,
                item.observations,
                deadline_ms,
                item.roads,
            ) {
                Response::Estimate(reply) => BatchOutcome::Estimate(reply),
                Response::Error { kind, message } => BatchOutcome::Error { kind, message },
                other => BatchOutcome::Error {
                    kind: ErrorKind::Internal,
                    message: format!("mismatched scatter response: {other:?}"),
                },
            }
        })
        .collect();
    Response::Batch(outcomes)
}

/// Broadcast one day to every shard; training is replicated, so all
/// must succeed.
///
/// A failure partway leaves shards at different day counts — visible
/// as diverging `days` in the `STATS` breakdown. The operator re-sends
/// the day once the fleet is whole; workers that already ingested it
/// would double-count, so the router reports *which* shard failed and
/// the drill procedure is: restore the fleet, then re-ingest only into
/// lagging shards via their direct addresses (or restart them from
/// snapshots taken before the partial day).
fn route_ingest(
    shared: &Arc<RouterShared>,
    links: &mut ShardLinks,
    rows: Vec<Vec<f64>>,
) -> Response {
    let shards = shared.config.shard_addrs.len();
    let mut epoch = 0u64;
    let mut days = 0u64;
    for shard in 0..shards {
        let Some(client) = links.get(&shared.config, shard) else {
            return shard_down(shard);
        };
        match client.ingest_day(rows.clone()) {
            Ok((e, d)) => {
                epoch = epoch.max(e);
                days = days.max(d);
            }
            Err(ServerError::Remote { kind, message }) => {
                return error_response(kind, format!("shard {shard}: {message}"));
            }
            Err(e) => {
                links.poison(shard);
                if is_transport(&e) {
                    return shard_down(shard);
                }
                return error_response(ErrorKind::Internal, format!("shard {shard}: {e}"));
            }
        }
    }
    Response::Ingested {
        epoch,
        days_ingested: days,
    }
}

/// Merge the router's own command counters with a per-shard health
/// breakdown probed over the wire.
///
/// The probe is pipelined like [`scatter_estimates`]: `STATS` goes out
/// to every live link first, then replies are collected in shard order
/// — broadcast latency is the slowest worker's, not the fleet's sum. A
/// link that fails at either step is poisoned and its row reports
/// `up: false` (stats probing never fails the request).
fn route_stats(shared: &Arc<RouterShared>, links: &mut ShardLinks) -> Response {
    let plan = &shared.config.plan;
    let shards = shared.config.shard_addrs.len();
    let fleet: Option<Vec<crate::fleet::WorkerStatus>> =
        shared.config.fleet.as_ref().map(|f| f.workers());
    let mut snap = shared.metrics.snapshot();
    let mut probes: Vec<Option<StatsReply>> = (0..shards).map(|_| None).collect();
    let mut sent: Vec<usize> = Vec::with_capacity(shards);
    for (shard, probe) in probes.iter_mut().enumerate() {
        match links.get(&shared.config, shard) {
            Some(client) => match client.send(&Request::Stats) {
                Ok(()) => sent.push(shard),
                Err(_) => links.poison(shard),
            },
            None => *probe = None,
        }
    }
    for shard in sent {
        let raw = match links.clients[shard].as_mut() {
            Some(client) => client.recv(),
            None => Err(link_down()),
        };
        match raw {
            Ok(Response::Stats(stats)) => probes[shard] = Some(stats),
            // A typed remote error, a mismatched response, or a dead
            // link all leave the row down; drop the link either way so
            // the next request redials instead of desyncing framing.
            Ok(_) | Err(_) => links.poison(shard),
        }
    }
    let mut shard_rows = Vec::with_capacity(shards);
    for (shard, probe) in probes.into_iter().enumerate() {
        let owned_roads = plan.owned_roads(shard).len() as u64;
        let restarts = fleet
            .as_ref()
            .and_then(|w| w.get(shard))
            .map_or(0, |w| w.restarts);
        match probe {
            Some(stats) => {
                let plan_ok = stats.shard.as_ref().is_some_and(|identity| {
                    identity.fingerprint == shared.fingerprint && identity.index as usize == shard
                });
                snap.epoch = snap.epoch.max(stats.epoch);
                snap.days_ingested = snap.days_ingested.max(stats.days_ingested);
                // Fleet-wide drift view: the worst signal and the
                // busiest trigger history across workers (every worker
                // ingests every day, so these normally agree anyway).
                snap.drift_signal = snap.drift_signal.max(stats.drift_signal);
                snap.drift_triggers = snap.drift_triggers.max(stats.drift_triggers);
                snap.drift_last_rebootstrap_epoch = snap
                    .drift_last_rebootstrap_epoch
                    .max(stats.drift_last_rebootstrap_epoch);
                snap.drift_seed_overlap = snap.drift_seed_overlap.max(stats.drift_seed_overlap);
                shard_rows.push(ShardHealth {
                    shard: shard as u32,
                    up: true,
                    plan_ok,
                    epoch: stats.epoch,
                    days_ingested: stats.days_ingested,
                    restarts,
                    owned_roads,
                });
            }
            None => {
                shard_rows.push(ShardHealth {
                    shard: shard as u32,
                    up: false,
                    plan_ok: false,
                    epoch: 0,
                    days_ingested: 0,
                    restarts,
                    owned_roads,
                });
            }
        }
    }
    snap.shards = shard_rows;
    Response::Stats(snap)
}

/// Broadcast `SNAPSHOT`; all shards must persist for the command to
/// succeed (a half-snapshotted fleet is not a restore point).
fn route_snapshot(shared: &Arc<RouterShared>, links: &mut ShardLinks) -> Response {
    let shards = shared.config.shard_addrs.len();
    let mut epoch = 0u64;
    let mut paths: Vec<String> = Vec::with_capacity(shards);
    for shard in 0..shards {
        let Some(client) = links.get(&shared.config, shard) else {
            return shard_down(shard);
        };
        match client.snapshot() {
            Ok((e, path)) => {
                epoch = epoch.max(e);
                paths.push(path);
            }
            Err(ServerError::Remote { kind, message }) => {
                return error_response(kind, format!("shard {shard}: {message}"));
            }
            Err(e) => {
                links.poison(shard);
                if is_transport(&e) {
                    return shard_down(shard);
                }
                return error_response(ErrorKind::Internal, format!("shard {shard}: {e}"));
            }
        }
    }
    Response::Snapshotted {
        epoch,
        path: paths.join(","),
    }
}
