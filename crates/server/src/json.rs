//! Minimal JSON document model used by the wire protocol.
//!
//! The workspace deliberately carries no general-purpose serde backend
//! (see DESIGN.md §5), so the protocol ships its own small codec: a
//! [`Json`] tree, a writer, and a recursive-descent parser. The subset
//! is exactly what the protocol needs — objects, arrays, strings,
//! `f64` numbers, booleans and `null` — with two properties the
//! serving path depends on:
//!
//! * **Bit-exact floats.** Numbers are written with Rust's shortest
//!   round-trip `f64` formatting and parsed back with `str::parse`,
//!   so every finite `f64` survives encode → decode with identical
//!   bits. The wire-equivalence integration tests pin this down.
//! * **Total NaN mapping.** JSON has no NaN/∞; non-finite numbers are
//!   written as `null`, and `null` parses to NaN. Ingested speed
//!   fields use NaN for "unobserved", so the mapping is semantic, not
//!   lossy.
//!
//! Object keys keep insertion order (a `Vec`, not a map) so encoding
//! is deterministic.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the encoding of non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; non-finite values encode as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order.
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object field by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialises to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest representation that round-trips the
                    // exact bits; `parse::<f64>` inverts it.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting depth cap: a hostile frame cannot overflow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected character {:?}", b as char))),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii span");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue; // unicode_escape consumed its span
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the source text.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let span = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(span).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    /// Parses the `XXXX` (and a following low surrogate, if needed) of
    /// a `\uXXXX` escape. `self.pos` sits just past the `u`.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.bytes.get(self.pos) != Some(&b'\\')
                || self.bytes.get(self.pos + 1) != Some(&b'u')
            {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 2;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("unpaired surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("bad surrogate pair"))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(self.err("unpaired surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Convenience: a number field (finite `f64` or NaN for `null`).
pub fn num_or_nan(v: &Json) -> Option<f64> {
    match v {
        Json::Null => Some(f64::NAN),
        Json::Num(v) => Some(*v),
        _ => None,
    }
}

/// Convenience: NaN-aware number (NaN encodes as `null`).
pub fn nan_to_json(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Null
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.encode()).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-0.0),
            Json::Num(1.5),
            Json::Num(1e300),
            Json::Num(5e-324), // min subnormal
            Json::Str("hé\"llo\n\\ \u{1F600} \u{7}".into()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn floats_roundtrip_bit_exact() {
        for bits in [
            0x3FF0000000000001u64, // 1.0 + ulp
            0x7FEFFFFFFFFFFFFF,    // MAX
            0x0000000000000001,    // min subnormal
            0x8000000000000000,    // -0.0
            0xC05EDD2F1A9FBE77,    // arbitrary
        ] {
            let v = f64::from_bits(bits);
            let back = roundtrip(&Json::Num(v)).as_f64().unwrap();
            assert_eq!(back.to_bits(), bits);
        }
    }

    #[test]
    fn non_finite_encodes_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
        assert!(num_or_nan(&Json::Null).unwrap().is_nan());
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::Obj(vec![
            ("cmd".into(), Json::Str("estimate".into())),
            (
                "obs".into(),
                Json::Arr(vec![
                    Json::Arr(vec![Json::Num(3.0), Json::Num(42.5)]),
                    Json::Arr(vec![Json::Num(9.0), Json::Num(31.25)]),
                ]),
            ),
            ("deadline".into(), Json::Null),
        ]);
        assert_eq!(roundtrip(&v), v);
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("estimate"));
        assert_eq!(v.get("obs").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn unicode_escapes_parse() {
        // Raw UTF-8 passes through; \u escapes (with surrogate pairs)
        // decode to the same string.
        assert_eq!(Json::parse(r#""Aé😀""#).unwrap(), Json::Str("Aé😀".into()));
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            Json::Str("Aé😀".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err()); // unpaired
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "nul",
            "[1] trailing",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let doc = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&doc).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(Json::parse(&ok).is_ok());
    }
}
