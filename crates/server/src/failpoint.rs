//! Fault-injection hooks for the daemon's resilience tests.
//!
//! A **failpoint** is a named site in the serving path where a test (or
//! an operator running a chaos drill) can inject a fault: a panic, a
//! stall, or a simulated resource failure. The daemon calls
//! [`fire`] at each site; with no failpoints configured the call is a
//! single relaxed atomic load, so the hooks are compiled into release
//! builds without measurable cost and the CI smoke job can exercise
//! them against the real binary.
//!
//! # Sites
//!
//! | site         | where it fires                                      |
//! |--------------|-----------------------------------------------------|
//! | `estimate`   | on a serving worker, before the estimate runs       |
//! | `retrain`    | on the ingest path, before the fold + retrain       |
//! | `rebootstrap`| mid drift-rebootstrap, after the history is         |
//! |              | windowed but before the model rebuilds              |
//! | `conn_spawn` | in the acceptor, in place of spawning a handler     |
//! | `conn_write` | in the response writer: with `fail`, only half the  |
//! |              | frame is written before the socket is severed (a    |
//! |              | mid-frame daemon death, as seen by the client)      |
//!
//! # Activation
//!
//! Programmatic (integration tests): [`configure`] / [`clear_all`].
//! Environmental (CI smoke against a real daemon process): set
//! `CROWDSPEED_FAILPOINTS` before the process starts, e.g.
//!
//! ```text
//! CROWDSPEED_FAILPOINTS="estimate=panic:1,conn_spawn=fail:2,retrain=stall:100"
//! ```
//!
//! Each entry is `site=action`, where the action is `panic[:times]`,
//! `fail[:times]`, or `stall:millis[:times]`; `times` bounds how often
//! the fault fires (unbounded when omitted).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// What a triggered failpoint does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic at the site (the daemon must isolate it).
    Panic,
    /// Report a simulated resource failure ([`fire`] returns `true`);
    /// the site treats it like the real failure it stands in for
    /// (e.g. a thread-spawn error).
    Fail,
    /// Sleep for the given number of milliseconds before continuing.
    Stall(u64),
}

struct Armed {
    action: Action,
    /// Remaining triggers; `None` = unbounded.
    remaining: Option<u32>,
}

struct Registry {
    /// Fast path: false ⇒ no failpoint is configured anywhere.
    any: AtomicBool,
    sites: Mutex<HashMap<String, Armed>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let reg = Registry {
            any: AtomicBool::new(false),
            sites: Mutex::new(HashMap::new()),
        };
        if let Ok(spec) = std::env::var("CROWDSPEED_FAILPOINTS") {
            let mut sites = reg.sites.lock();
            for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
                match parse_entry(entry.trim()) {
                    Some((site, armed)) => {
                        sites.insert(site, armed);
                    }
                    None => eprintln!("failpoint: ignoring malformed entry {entry:?}"),
                }
            }
            let any = !sites.is_empty();
            drop(sites);
            reg.any.store(any, Ordering::Release);
        }
        reg
    })
}

fn parse_entry(entry: &str) -> Option<(String, Armed)> {
    let (site, action) = entry.split_once('=')?;
    let mut parts = action.split(':');
    let kind = parts.next()?;
    let (action, remaining) = match kind {
        "panic" | "fail" => {
            let remaining = match parts.next() {
                None => None,
                Some(n) => Some(n.parse().ok()?),
            };
            let action = if kind == "panic" {
                Action::Panic
            } else {
                Action::Fail
            };
            (action, remaining)
        }
        "stall" => {
            let ms: u64 = parts.next()?.parse().ok()?;
            let remaining = match parts.next() {
                None => None,
                Some(n) => Some(n.parse().ok()?),
            };
            (Action::Stall(ms), remaining)
        }
        _ => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some((site.to_string(), Armed { action, remaining }))
}

/// Arms `site` with `action`, firing at most `times` times (`None` =
/// every time). Replaces any previous configuration of the site.
pub fn configure(site: &str, action: Action, times: Option<u32>) {
    let reg = registry();
    let mut sites = reg.sites.lock();
    sites.insert(
        site.to_string(),
        Armed {
            action,
            remaining: times,
        },
    );
    reg.any.store(true, Ordering::Release);
}

/// Disarms every failpoint (tests call this between scenarios).
pub fn clear_all() {
    let reg = registry();
    let mut sites = reg.sites.lock();
    sites.clear();
    reg.any.store(false, Ordering::Release);
}

/// Fires the failpoint at `site`. Returns `true` when the caller must
/// simulate a resource failure ([`Action::Fail`]); [`Action::Panic`]
/// panics here, [`Action::Stall`] sleeps here, and an unarmed site
/// returns `false` after one relaxed atomic load.
pub fn fire(site: &str) -> bool {
    let reg = registry();
    if !reg.any.load(Ordering::Acquire) {
        return false;
    }
    let action = {
        let mut sites = reg.sites.lock();
        let Some(armed) = sites.get_mut(site) else {
            return false;
        };
        match &mut armed.remaining {
            Some(0) => return false,
            Some(n) => *n -= 1,
            None => {}
        }
        armed.action
    };
    match action {
        Action::Panic => panic!("failpoint {site:?} injected a panic"),
        Action::Fail => true,
        Action::Stall(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_entry_understands_the_env_syntax() {
        let (site, armed) = parse_entry("estimate=panic:2").unwrap();
        assert_eq!(site, "estimate");
        assert_eq!(armed.action, Action::Panic);
        assert_eq!(armed.remaining, Some(2));
        let (_, armed) = parse_entry("conn_spawn=fail").unwrap();
        assert_eq!(armed.action, Action::Fail);
        assert_eq!(armed.remaining, None);
        let (_, armed) = parse_entry("retrain=stall:250:1").unwrap();
        assert_eq!(armed.action, Action::Stall(250));
        assert_eq!(armed.remaining, Some(1));
        assert!(parse_entry("nonsense").is_none());
        assert!(parse_entry("x=explode").is_none());
        assert!(parse_entry("x=stall").is_none());
        assert!(parse_entry("x=panic:1:extra").is_none());
    }
}
