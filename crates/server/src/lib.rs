//! `crowdspeed-server`: a persistent TCP serving daemon for the
//! crowdsourced speed estimator.
//!
//! The crate turns the batch serving path in `crowdspeed::serve` into
//! a long-running process:
//!
//! * [`daemon`] — an event-driven connection layer (one readiness loop
//!   owning every client socket nonblocking, assembling frames
//!   incrementally) feeding the `ServePool` worker threads, with
//!   bounded-queue admission control and per-request deadlines.
//! * [`evloop`] — the readiness primitive under the daemon: raw-FFI
//!   `epoll(7)` on Linux with a portable `poll(2)` fallback, no async
//!   runtime.
//! * [`state`] — the hot-swappable model slot (epoch pointer behind a
//!   `parking_lot::RwLock`) and the [`state::TrainState`] that folds
//!   `INGEST_DAY` feeds into the online correlation model and retrains
//!   off the serving path.
//! * [`protocol`] — the length-prefixed, versioned frame format
//!   (`ESTIMATE`, `INGEST_DAY`, `STATS`, `SHUTDOWN`, batched
//!   `ESTIMATE_BATCH`) in two codecs selected by the header version
//!   byte: human-debuggable JSON and a compact binary encoding with
//!   verbatim `f64` bits.
//! * [`client`] — the blocking client used by the CLI, the bench, and
//!   the integration suite.
//! * [`metrics`] — per-command counters, rejection counts, the
//!   model-epoch gauge, and a fixed-bucket latency histogram, all
//!   surfaced through `STATS`.
//! * [`json`] — a dependency-free JSON codec with bit-exact `f64`
//!   round-trips, so wire estimates are bit-identical to in-process
//!   ones.
//! * [`snapshot`] — the persistent model-snapshot layer: a versioned,
//!   checksummed binary format written atomically on every epoch
//!   publish, from which a restarted daemon resumes bit-identically
//!   instead of retraining.
//! * [`failpoint`] — a test-only fault-injection hook (panics, stalls,
//!   spawn failures, short writes) that stays a single relaxed atomic
//!   load when unarmed; the fault-tolerance suite drives the daemon
//!   through it.
//! * [`fleet`] — the shard fleet supervisor: one worker process per
//!   shard, crash detection, and backoff restarts.
//! * [`router`] — the scatter-gather front-end that speaks the daemon
//!   protocol unchanged and fans requests out across the shard fleet.

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod evloop;
pub mod failpoint;
pub mod fleet;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod router;
pub mod snapshot;
pub mod state;

pub use client::{Client, ClientConfig};
pub use daemon::{Daemon, DaemonConfig, DaemonHandle, ShardSpec};
pub use fleet::{dataset_plan, Fleet, FleetStatus, WorkerSpec, WorkerStatus};
pub use protocol::{
    BatchItem, BatchOutcome, Codec, ErrorKind, Request, Response, ShardHealth, ShardIdentity,
    StatsReply,
};
pub use router::{Router, RouterConfig, RouterHandle};
pub use snapshot::RejectReason;
pub use state::{ModelSlot, RetrainError, TrainInputs, TrainState};

use crowdspeed::CoreError;
use protocol::WireError;

/// Errors surfaced by the daemon and client.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Framing-level failure.
    Wire(WireError),
    /// A core-crate failure (training, estimation).
    Core(CoreError),
    /// The daemon answered with a typed error.
    Remote {
        /// Failure class reported by the daemon.
        kind: ErrorKind,
        /// Daemon-provided detail.
        message: String,
    },
    /// The daemon's reply could not be interpreted.
    UnexpectedResponse(String),
    /// The configured request timeout expired before a response
    /// arrived; the client reconnects before its next request.
    TimedOut,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "io error: {e}"),
            ServerError::Wire(e) => write!(f, "wire error: {e}"),
            ServerError::Core(e) => write!(f, "core error: {e}"),
            ServerError::Remote { kind, message } => {
                write!(f, "daemon error ({kind}): {message}")
            }
            ServerError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
            ServerError::TimedOut => write!(f, "request timed out"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Wire(e) => Some(e),
            ServerError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<WireError> for ServerError {
    fn from(e: WireError) -> Self {
        ServerError::Wire(e)
    }
}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> Self {
        ServerError::Core(e)
    }
}
