//! The `crowdspeedd` daemon: one readiness-driven event loop owning
//! every client socket, feeding complete requests to the worker pool.
//!
//! # Thread layout
//!
//! ```text
//!            ┌───────────────────────────────┐   complete frame
//!   TCP ───▶ │ event loop (epoll/poll)       │ ──────────────────┐
//!            │  · accepts                    │    try_submit     │
//!            │  · nonblocking reads/writes   │                   ▼
//!            │  · incremental frame assembly │            ┌─────────────┐
//!            │  · reply flushing             │ ◀───────── │  ServePool  │
//!            └───────────────────────────────┘ completion │  workers    │
//!                      ▲           │            + waker   │ (1 scratch  │
//!                      │           └──────────▶ aux       │  each)      │
//!                      └── completion + waker  threads    └─────────────┘
//!                                            (INGEST_DAY,
//!                                             SNAPSHOT)
//! ```
//!
//! Connections are owned by a single event-loop thread (see
//! [`crate::evloop`]): sockets are nonblocking, frames are assembled
//! incrementally per connection, and an idle keep-alive connection
//! costs one registered fd and a few hundred bytes — no thread, no
//! stack. Only *complete* requests leave the loop: `ESTIMATE` and
//! `ESTIMATE_BATCH` cross into the worker pool (the latency-sensitive
//! hot path, subject to admission control and deadlines), `INGEST_DAY`
//! and `SNAPSHOT` run on short-lived aux threads under the
//! [`TrainState`] mutex — expensive, but off the serving path by
//! construction — and `STATS`/`SHUTDOWN` are answered inline. Workers
//! post completions through a channel and nudge the loop with a
//! one-byte write to a wakeup socketpair.
//!
//! Each connection speaks whichever codec its frames declare (the
//! version byte selects JSON or binary per frame; see
//! [`crate::protocol::Codec`]), and every reply is encoded with the
//! codec of the request it answers.
//!
//! # Backpressure policy
//!
//! The worker queue is a bounded channel sized by
//! [`DaemonConfig::queue_capacity`]. When it is full the daemon does
//! not block the connection: it immediately answers
//! [`ErrorKind::Overloaded`] and counts the rejection. Clients own the
//! retry policy; the daemon's only promise is a fast, typed "no".
//! One connection has at most one request in flight; frames pipelined
//! behind it stay buffered until the reply is flushed.

use crate::evloop::{Event, Interest, Poller};
use crate::metrics::{Command, Metrics};
use crate::protocol::{
    frame_bytes, write_frame_with_version, BatchItem, BatchOutcome, Codec, ErrorKind,
    EstimateReply, Request, Response, ShardIdentity, BINARY_PROTOCOL_VERSION,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::snapshot::{self, RejectReason};
use crate::state::{
    panic_message, ModelEpoch, ModelSlot, RetrainError, RetrainMode, TrainInputs, TrainState,
};
use crate::ServerError;
use crowdspeed::prelude::*;
use crowdspeed::shard::{ShardPlan, ShardView};
use crowdspeed::CoreError;
use parking_lot::{Mutex, RwLock};
use roadnet::RoadId;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables for [`Daemon::spawn`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`DaemonHandle::addr`]).
    pub addr: String,
    /// Estimate worker threads (each owns one `EstimateScratch`).
    pub workers: usize,
    /// Bounded admission queue depth; a full queue answers
    /// `Overloaded` instead of blocking.
    pub queue_capacity: usize,
    /// Frames declaring more payload than this are refused.
    pub max_frame_bytes: usize,
    /// Deadline applied to estimates that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Maximum simultaneous connections. The connection past the cap
    /// is answered with a typed [`ErrorKind::Overloaded`] frame and
    /// closed instead of registering an unbounded number of sockets.
    pub max_connections: usize,
    /// Directory for persistent model snapshots. `Some` makes every
    /// epoch publish write a snapshot atomically, and lets
    /// [`Daemon::spawn_from`] resume from the newest valid one instead
    /// of retraining. `None` disables persistence (and `SNAPSHOT`
    /// answers [`ErrorKind::SnapshotUnavailable`]).
    pub snapshot_dir: Option<PathBuf>,
    /// How many snapshot files to retain (oldest pruned first).
    pub snapshot_keep: usize,
    /// Per-frame read deadline: once the first byte of a frame
    /// arrives, the rest must follow within this budget or the
    /// connection is dropped — a trickling peer (slow loris) cannot
    /// pin a connection slot forever. `None` disables the deadline.
    pub frame_deadline_ms: Option<u64>,
    /// Per-connection token-bucket rate limit in requests/second.
    /// A connection exceeding it gets typed [`ErrorKind::RateLimited`]
    /// refusals (the connection survives); `SHUTDOWN` is exempt so an
    /// operator can always stop a flooded daemon. `None` disables
    /// limiting.
    pub rate_limit_rps: Option<u32>,
    /// Runs this daemon as one shard worker of a fleet: it trains the
    /// full model exactly as an unsharded daemon would (that is what
    /// makes router↔single-daemon bit-identity possible) but serves
    /// only the roads its slice of the plan owns, from a masked view
    /// that skips inference work outside its correlation components.
    pub shard: Option<ShardSpec>,
}

/// Which slice of a [`ShardPlan`] a shard worker serves.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// This worker's shard index, `< plan.num_shards`.
    pub index: usize,
    /// The fleet-wide plan; every worker and the router must hold the
    /// same plan (cross-checked by fingerprint through `STATS`).
    pub plan: ShardPlan,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            default_deadline_ms: None,
            max_connections: 1024,
            snapshot_dir: None,
            snapshot_keep: 3,
            frame_deadline_ms: Some(30_000),
            rate_limit_rps: None,
            shard: None,
        }
    }
}

/// The atomically-swapped `(model, view)` pair a shard worker serves
/// from. Rebuilding the view and swapping the pair as one unit (under
/// the train lock, like every publish) means a reader can never mix
/// epoch N's estimator with epoch N-1's active-component mask.
struct ShardModel {
    model: Arc<ModelEpoch>,
    view: ShardView,
}

/// Shard-serving state hung off [`Shared`].
struct ShardServing {
    index: usize,
    plan: ShardPlan,
    fingerprint: u64,
    current: RwLock<Arc<ShardModel>>,
}

/// State shared by the event loop, aux threads, and workers.
struct Shared {
    model: ModelSlot,
    train: Mutex<TrainState>,
    metrics: Metrics,
    shutdown: AtomicBool,
    pool: ServePool,
    config: DaemonConfig,
    /// Config hash stamped into every snapshot this process writes
    /// (computed once at spawn; see [`snapshot::config_hash`]).
    snapshot_hash: u64,
    /// Present when this daemon is a shard worker.
    shard: Option<ShardServing>,
}

/// A running daemon (see [`Daemon::spawn`]).
pub struct Daemon;

/// Handle to a spawned daemon: its bound address and lifecycle control.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    driver: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Trains the initial model from `train_state`, binds the listener,
    /// and starts the event loop. Returns once the daemon is reachable.
    pub fn spawn(
        mut train_state: TrainState,
        config: DaemonConfig,
    ) -> Result<DaemonHandle, ServerError> {
        let estimator = train_state.train().map_err(ServerError::Core)?;
        // Hash before serving starts: the configured seed set is still
        // deployed here, so this equals the hash a later `spawn_from`
        // derives from its inputs even if drift re-selects seeds later.
        let snapshot_hash = snapshot::train_state_hash(&train_state);
        spawn_inner(
            train_state,
            estimator,
            1,
            false,
            Vec::new(),
            config,
            snapshot_hash,
        )
    }

    /// Starts a daemon that resumes from the newest valid snapshot in
    /// [`DaemonConfig::snapshot_dir`] when one exists — skipping both
    /// the online-correlation bootstrap and the initial train — and
    /// falls back to [`Daemon::spawn`]'s train-from-scratch path when
    /// the directory is empty, missing, or every file is rejected
    /// (each rejection lands in the `snapshot_rejected_*` counters
    /// with its typed reason). A resumed daemon answers its first
    /// `ESTIMATE` bit-identically to the process that wrote the file.
    pub fn spawn_from(
        inputs: TrainInputs,
        config: DaemonConfig,
    ) -> Result<DaemonHandle, ServerError> {
        let expected = snapshot::config_hash(
            inputs.graph.num_roads(),
            inputs.history.clock().slots_per_day,
            &inputs.seeds,
            &inputs.corr_config,
            &inputs.config,
        );
        let mut rejects: Vec<RejectReason> = Vec::new();
        let loaded = config.snapshot_dir.as_deref().and_then(|dir| {
            snapshot::load_newest(dir, expected, |reason, _path| rejects.push(reason))
        });
        match loaded {
            Some(outcome) => {
                let payload = outcome.payload;
                // The snapshot carries the *currently deployed* seed set
                // inside the estimator — after a drift rebootstrap it
                // differs from the configured one, so adopt it rather
                // than the caller's `inputs.seeds`. The file already
                // passed the config-hash check against the configured
                // set, so this is the same model lineage.
                let train_state = TrainState::resume(
                    inputs.graph,
                    payload.estimator.seeds().to_vec(),
                    inputs.config,
                    payload.clock,
                    payload.days,
                    payload.online,
                    payload.context,
                    payload.drift,
                );
                spawn_inner(
                    train_state,
                    payload.estimator,
                    payload.epoch,
                    true,
                    rejects,
                    config,
                    expected,
                )
            }
            None => {
                let mut train_state = TrainState::new(
                    inputs.graph,
                    &inputs.history,
                    inputs.seeds,
                    &inputs.corr_config,
                    inputs.config,
                );
                let estimator = train_state.train().map_err(ServerError::Core)?;
                spawn_inner(train_state, estimator, 1, false, rejects, config, expected)
            }
        }
    }
}

/// Shared tail of [`Daemon::spawn`] / [`Daemon::spawn_from`]: binds
/// the listener, seeds the metrics (resume gauge + reject counters),
/// persists the initial epoch when it was freshly trained, builds the
/// poller + wakeup pair (so setup failures surface here, not inside
/// the thread), and starts the event loop.
#[allow(clippy::too_many_arguments)]
fn spawn_inner(
    train_state: TrainState,
    estimator: TrafficEstimator,
    epoch: u64,
    resumed: bool,
    rejects: Vec<RejectReason>,
    config: DaemonConfig,
    // Stamped into every snapshot this process writes. Callers compute
    // it from the *configured* seed set (not the currently deployed
    // one), so snapshots written after a drift seed re-selection still
    // match the hash a restart derives from its inputs.
    snapshot_hash: u64,
) -> Result<DaemonHandle, ServerError> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let metrics = Metrics::new(epoch, train_state.days_ingested());
    metrics.set_snapshot_resumed(resumed);
    metrics.set_drift(train_state.drift());
    for reason in rejects {
        metrics.snapshot_reject(reason);
    }
    let model = ModelSlot::with_epoch(estimator, epoch);
    let shard = match &config.shard {
        Some(spec) => {
            let current = model.current();
            let view = current
                .estimator
                .shard_view(&spec.plan, spec.index)
                .map_err(ServerError::Core)?;
            Some(ShardServing {
                index: spec.index,
                fingerprint: spec.plan.fingerprint(),
                plan: spec.plan.clone(),
                current: RwLock::new(Arc::new(ShardModel {
                    model: current,
                    view,
                })),
            })
        }
        None => None,
    };
    let shared = Arc::new(Shared {
        model,
        train: Mutex::new(train_state),
        metrics,
        shutdown: AtomicBool::new(false),
        pool: ServePool::new(config.workers.max(1), config.queue_capacity.max(1)),
        config,
        snapshot_hash,
        shard,
    });
    if !resumed && shared.config.snapshot_dir.is_some() {
        // Persist the freshly trained epoch before accepting traffic,
        // so even a crash right after startup has a resume point.
        let model = shared.model.current();
        let train = shared.train.lock();
        persist_epoch(&shared, &train, &model.estimator, model.epoch);
    }
    let mut poller = Poller::new()?;
    let (waker_tx, waker_rx) = UnixStream::pair()?;
    waker_tx.set_nonblocking(true)?;
    waker_rx.set_nonblocking(true)?;
    poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
    poller.register(waker_rx.as_raw_fd(), WAKER_TOKEN, Interest::READABLE)?;
    let (completions_tx, completions_rx) = channel();
    let evloop = EventLoop {
        shared: Arc::clone(&shared),
        listener,
        poller,
        waker_rx,
        port: CompletionPort {
            tx: completions_tx,
            waker: Arc::new(waker_tx),
        },
        completions_rx,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        aux: Vec::new(),
    };
    let driver = std::thread::Builder::new()
        .name("crowdspeedd-evloop".to_string())
        .spawn(move || evloop.run())
        .expect("spawn event loop thread");
    Ok(DaemonHandle {
        addr,
        shared,
        driver: Some(driver),
    })
}

/// Encodes and atomically writes one epoch to the snapshot directory,
/// counting the outcome. Returns the written path, or `None` when no
/// directory is configured or the write failed (serving continues
/// either way — persistence is never allowed to take the daemon down).
fn persist_epoch(
    shared: &Shared,
    train: &TrainState,
    estimator: &TrafficEstimator,
    epoch: u64,
) -> Option<PathBuf> {
    let dir = shared.config.snapshot_dir.as_deref()?;
    let bytes = snapshot::encode_snapshot(
        epoch,
        train.clock(),
        train.days(),
        train.online(),
        estimator,
        train.context(),
        train.drift(),
        shared.snapshot_hash,
    );
    match snapshot::write_snapshot(dir, shared.config.snapshot_keep, epoch, &bytes) {
        Ok(path) => {
            shared.metrics.snapshot_write();
            Some(path)
        }
        Err(_) => {
            shared.metrics.snapshot_write_failure();
            None
        }
    }
}

impl DaemonHandle {
    /// The address the daemon is listening on (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current model epoch (the `STATS` gauge).
    pub fn epoch(&self) -> u64 {
        self.shared.metrics.epoch()
    }

    /// Asks the daemon to stop: the event loop stops accepting, closes
    /// idle connections, and drains in-flight requests.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Signals shutdown and blocks until the event loop has drained
    /// every connection and exited.
    pub fn join(mut self) {
        self.shutdown();
        if let Some(handle) = self.driver.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until the daemon stops on its own (a `SHUTDOWN` frame or
    /// a [`DaemonHandle::shutdown`] from another thread) — the
    /// foreground mode of the `crowdspeed daemon` subcommand.
    pub fn wait(mut self) {
        if let Some(handle) = self.driver.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.driver.take() {
            let _ = handle.join();
        }
    }
}

/// Token of the accepting listener in the poller.
const LISTENER_TOKEN: usize = 0;
/// Token of the wakeup socketpair's read side.
const WAKER_TOKEN: usize = 1;
/// First token handed to a client connection; tokens count up from
/// here and are never reused, so a stale completion can never be
/// delivered to a different connection that recycled the slot.
const FIRST_CONN_TOKEN: usize = 2;
/// Poll timeout: bounds how stale the shutdown flag and frame
/// deadlines can get when no fd is active.
const TICK: Duration = Duration::from_millis(25);
/// How long a shutting-down loop waits for busy connections to finish
/// their in-flight request before closing them anyway.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(5);
/// Oversized frames below this are drained so the typed
/// `FrameTooLarge` reply is actually deliverable; larger ones just get
/// the hang-up (draining gigabytes to be polite is its own DoS).
const DRAIN_CAP: usize = 1 << 20;
/// Bytes read from a socket per `read` call.
const READ_CHUNK: usize = 16 * 1024;
/// Reads per readable event before yielding back to the poller, so one
/// fire-hosing peer cannot starve its neighbours (level-triggered
/// polling re-reports whatever is left).
const READ_ROUNDS: usize = 4;

/// A finished request on its way back to the event loop.
struct Completion {
    token: usize,
    command: Command,
    codec: Codec,
    response: Response,
}

/// Clonable sender handed to workers and aux threads: posts the
/// completion, then nudges the sleeping poller with a one-byte write.
#[derive(Clone)]
struct CompletionPort {
    tx: Sender<Completion>,
    waker: Arc<UnixStream>,
}

impl CompletionPort {
    fn post(&self, completion: Completion) {
        let _ = self.tx.send(completion);
        // A full (WouldBlock) wakeup pipe is fine: unread bytes are
        // already pending, so the loop is waking up regardless.
        let mut waker: &UnixStream = &self.waker;
        let _ = waker.write(&[1u8]);
    }
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet consumed as frames.
    read_buf: Vec<u8>,
    /// Encoded reply bytes not yet accepted by the socket.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// When the first byte of a partial frame arrived (the per-frame
    /// read deadline measures from here).
    frame_started: Option<Instant>,
    bucket: Option<TokenBucket>,
    /// A request from this connection is in flight in the pool or on
    /// an aux thread; frames pipelined behind it stay buffered.
    busy: bool,
    /// Close once `write_buf` is fully flushed; reads are discarded.
    close_after_flush: bool,
    /// Injected fault: after flushing (a half frame), sever the socket.
    sever_after_flush: bool,
    /// Swallowing the body of an oversized frame so the typed error
    /// is deliverable.
    draining: Option<Draining>,
    /// Whether the poller currently watches this fd for writability.
    interest_write: bool,
}

struct Draining {
    remaining: usize,
    declared: usize,
    codec: Codec,
}

impl Conn {
    fn new(stream: TcpStream, rate_limit_rps: Option<u32>) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            frame_started: None,
            // Each connection gets its own bucket: one flooding client
            // starves itself, not its neighbours.
            bucket: rate_limit_rps.map(TokenBucket::new),
            busy: false,
            close_after_flush: false,
            sever_after_flush: false,
            draining: None,
            interest_write: false,
        }
    }

    fn has_pending_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }
}

/// What `advance` decided to do after inspecting a connection's
/// buffer; computed under the connection borrow, acted on outside it.
enum Step {
    /// Nothing (more) to do for this connection right now.
    Stop,
    /// Re-inspect the buffer (state changed, e.g. a drain started).
    Again,
    /// The stream is unrecoverable; hang up without a reply.
    CloseNow,
    /// An oversized frame has been fully swallowed; answer
    /// `FrameTooLarge`, then close.
    DrainedReply { declared: usize, codec: Codec },
    /// One complete frame.
    Frame { version: u8, payload: Vec<u8> },
}

/// Outcome of a nonblocking read burst, computed under the connection
/// borrow.
enum Fill {
    Alive,
    Close,
}

/// The single-threaded connection owner: accepts, assembles frames,
/// dispatches complete requests, flushes replies.
struct EventLoop {
    shared: Arc<Shared>,
    listener: TcpListener,
    poller: Poller,
    waker_rx: UnixStream,
    port: CompletionPort,
    completions_rx: Receiver<Completion>,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    /// Short-lived `INGEST_DAY`/`SNAPSHOT` threads, reaped as they
    /// finish and joined at exit.
    aux: Vec<std::thread::JoinHandle<()>>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut draining_since: Option<Instant> = None;
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) && draining_since.is_none() {
                self.enter_drain();
                draining_since = Some(Instant::now());
            }
            if let Some(since) = draining_since {
                if self.conns.is_empty() || since.elapsed() > SHUTDOWN_DRAIN {
                    break;
                }
            }
            if self.poller.wait(&mut events, Some(TICK)).is_err() {
                // EINTR is retried inside `wait`; anything else means
                // the poller itself is broken and serving is over.
                break;
            }
            for event in std::mem::take(&mut events) {
                match event.token {
                    LISTENER_TOKEN => {
                        if draining_since.is_none() {
                            self.accept_ready();
                        }
                    }
                    WAKER_TOKEN => self.drain_waker(),
                    token => self.conn_event(token, event),
                }
            }
            self.pump_completions();
            self.check_frame_deadlines();
            self.aux.retain(|handle| !handle.is_finished());
        }
        let open: Vec<usize> = self.conns.keys().copied().collect();
        for token in open {
            self.close(token);
        }
        for handle in self.aux.drain(..) {
            let _ = handle.join();
        }
    }

    /// Shutdown noticed: stop accepting, close idle connections, let
    /// busy ones finish their in-flight request (bounded by
    /// [`SHUTDOWN_DRAIN`]).
    fn enter_drain(&mut self) {
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        let open: Vec<usize> = self.conns.keys().copied().collect();
        for token in open {
            let keep = self
                .conns
                .get(&token)
                .is_some_and(|c| c.busy || c.has_pending_write());
            if keep {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.close_after_flush = true;
                }
            } else {
                self.close(token);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let cap = self.shared.config.max_connections.max(1);
                    if self.conns.len() >= cap {
                        refuse_connection(
                            stream,
                            &self.shared,
                            format!("connection limit reached ({cap})"),
                        );
                        continue;
                    }
                    if crate::failpoint::fire("conn_spawn") {
                        // Injected resource exhaustion: same shedding
                        // path a real registration failure takes, but
                        // the stream is still blocking so the peer
                        // gets the typed frame.
                        refuse_connection(
                            stream,
                            &self.shared,
                            "cannot spawn connection handler".to_string(),
                        );
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        self.shared.metrics.reject_connection();
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, Interest::READABLE)
                        .is_err()
                    {
                        // fd-table exhaustion is overload, not a reason
                        // to kill the loop: shed and keep serving.
                        self.shared.metrics.reject_connection();
                        continue;
                    }
                    self.shared.metrics.conn_opened();
                    self.conns
                        .insert(token, Conn::new(stream, self.shared.config.rate_limit_rps));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 256];
        loop {
            match (&self.waker_rx).read(&mut sink) {
                Ok(0) => return,
                Ok(n) if n < sink.len() => return,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, token: usize, event: Event) {
        if event.writable && !self.try_flush(token) {
            return;
        }
        if event.readable && !self.fill(token) {
            return;
        }
        self.advance(token);
    }

    /// Nonblocking read burst into the connection's buffer. Returns
    /// `false` when the connection was closed.
    fn fill(&mut self, token: usize) -> bool {
        let mut chunk = [0u8; READ_CHUNK];
        // Bound on buffered-but-unserved bytes per connection: two max
        // frames (one being served, one pipelined) or the drain cap,
        // whichever is larger. A peer blasting past it is flooding,
        // not pipelining, and gets the hang-up.
        let cap = DRAIN_CAP.max(2 * self.shared.config.max_frame_bytes.saturating_add(5));
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            let mut rounds = 0;
            loop {
                if rounds == READ_ROUNDS {
                    break Fill::Alive;
                }
                rounds += 1;
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        // Peer EOF. With a request in flight or a reply
                        // queued, keep the socket until the reply is
                        // flushed (closing now would throw it away).
                        if conn.busy || conn.has_pending_write() {
                            conn.close_after_flush = true;
                            conn.read_buf.clear();
                            break Fill::Alive;
                        }
                        break Fill::Close;
                    }
                    Ok(n) => {
                        if !conn.close_after_flush {
                            conn.read_buf.extend_from_slice(&chunk[..n]);
                            if conn.read_buf.len() > cap {
                                break Fill::Close;
                            }
                        }
                        if n < chunk.len() {
                            break Fill::Alive;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Fill::Alive,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break Fill::Close,
                }
            }
        };
        match outcome {
            Fill::Alive => true,
            Fill::Close => {
                self.close(token);
                false
            }
        }
    }

    /// Consumes as much of the connection's read buffer as possible:
    /// complete frames are dispatched, partial ones arm the frame
    /// deadline, oversized ones start (or finish) a drain.
    fn advance(&mut self, token: usize) {
        loop {
            let max = self.shared.config.max_frame_bytes;
            let step = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.close_after_flush {
                    conn.read_buf.clear();
                    Step::Stop
                } else if let Some(draining) = &mut conn.draining {
                    let take = draining.remaining.min(conn.read_buf.len());
                    conn.read_buf.drain(..take);
                    draining.remaining -= take;
                    if draining.remaining == 0 {
                        let done = conn.draining.take().expect("draining state present");
                        conn.frame_started = None;
                        Step::DrainedReply {
                            declared: done.declared,
                            codec: done.codec,
                        }
                    } else {
                        // Still swallowing; the frame deadline keeps a
                        // stalled drain from holding the slot forever.
                        conn.frame_started.get_or_insert_with(Instant::now);
                        Step::Stop
                    }
                } else if conn.busy {
                    // One request in flight per connection; anything
                    // pipelined behind it waits in `read_buf`.
                    Step::Stop
                } else if conn.read_buf.len() < 4 {
                    if conn.read_buf.is_empty() {
                        conn.frame_started = None;
                    } else {
                        conn.frame_started.get_or_insert_with(Instant::now);
                    }
                    Step::Stop
                } else {
                    let len = u32::from_be_bytes([
                        conn.read_buf[0],
                        conn.read_buf[1],
                        conn.read_buf[2],
                        conn.read_buf[3],
                    ]) as usize;
                    if len < 1 {
                        // A frame with no version byte: the stream
                        // cannot be resynchronised.
                        Step::CloseNow
                    } else if len - 1 > max {
                        let declared = len - 1;
                        if declared < DRAIN_CAP {
                            // Closing with unread bytes in the receive
                            // buffer makes TCP reset the connection,
                            // destroying the queued error response.
                            // Swallow modestly oversized frames so the
                            // typed error is actually delivered. The
                            // reply speaks the frame's own codec when
                            // its version byte has arrived.
                            let codec = conn
                                .read_buf
                                .get(4)
                                .and_then(|&v| Codec::from_version(v))
                                .unwrap_or(Codec::Json);
                            conn.read_buf.drain(..4);
                            conn.frame_started.get_or_insert_with(Instant::now);
                            conn.draining = Some(Draining {
                                remaining: len,
                                declared,
                                codec,
                            });
                            Step::Again
                        } else {
                            Step::CloseNow
                        }
                    } else if conn.read_buf.len() < 4 + len {
                        conn.frame_started.get_or_insert_with(Instant::now);
                        Step::Stop
                    } else {
                        let version = conn.read_buf[4];
                        let payload = conn.read_buf[5..4 + len].to_vec();
                        conn.read_buf.drain(..4 + len);
                        conn.frame_started = None;
                        Step::Frame { version, payload }
                    }
                }
            };
            match step {
                Step::Stop => return,
                Step::Again => {}
                Step::CloseNow => {
                    self.close(token);
                    return;
                }
                Step::DrainedReply { declared, codec } => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.close_after_flush = true;
                    }
                    self.reply(
                        token,
                        codec,
                        error_response(
                            ErrorKind::FrameTooLarge,
                            format!("frame of {declared} bytes exceeds limit of {max}"),
                        ),
                    );
                    return;
                }
                Step::Frame { version, payload } => self.handle_frame(token, version, payload),
            }
        }
    }

    /// One complete frame: pick the codec, decode, rate-limit, and
    /// dispatch.
    fn handle_frame(&mut self, token: usize, version: u8, payload: Vec<u8>) {
        let Some(codec) = Codec::from_version(version) else {
            // The peer's codec is unknown by definition; JSON is the
            // compatibility codec.
            self.reply(
                token,
                Codec::Json,
                error_response(
                    ErrorKind::UnsupportedVersion,
                    format!(
                        "speak version {PROTOCOL_VERSION} or {BINARY_PROTOCOL_VERSION}, \
                         got {version}"
                    ),
                ),
            );
            return;
        };
        let decoded = match codec {
            Codec::Json => Request::decode(&payload),
            Codec::Binary => Request::decode_binary(&payload),
        };
        let request = match decoded {
            Ok(request) => request,
            Err((kind, message)) => {
                // Unknown command / malformed body: typed error, but
                // the connection survives (framing is still intact).
                self.reply(token, codec, error_response(kind, message));
                return;
            }
        };
        let command = match &request {
            Request::Estimate { .. } => Command::Estimate,
            Request::EstimateBatch { .. } => Command::EstimateBatch,
            Request::IngestDay { .. } => Command::IngestDay,
            Request::Stats => Command::Stats,
            Request::Shutdown => Command::Shutdown,
            Request::Snapshot => Command::Snapshot,
        };
        self.shared.metrics.received(command);
        self.shared.metrics.codec_request(codec);
        // The bucket admits after decode (a malformed flood already
        // fails cheaply above) and never gates `SHUTDOWN`: an operator
        // must always be able to stop a flooded daemon.
        if command != Command::Shutdown {
            let limited = self
                .conns
                .get_mut(&token)
                .is_some_and(|conn| match &mut conn.bucket {
                    Some(bucket) => !bucket.try_take(),
                    None => false,
                });
            if limited {
                self.shared.metrics.rate_limited();
                let refused = error_response(
                    ErrorKind::RateLimited,
                    format!(
                        "connection exceeded {} requests/second",
                        self.shared.config.rate_limit_rps.unwrap_or(0)
                    ),
                );
                self.account(command, &refused);
                self.reply(token, codec, refused);
                return;
            }
        }
        match request {
            Request::Estimate {
                slot_of_day,
                observations,
                deadline_ms,
                roads,
            } => self.submit_estimate(token, codec, slot_of_day, observations, deadline_ms, roads),
            Request::EstimateBatch { items, deadline_ms } => {
                self.submit_batch(token, codec, items, deadline_ms)
            }
            Request::IngestDay { rows } => {
                self.submit_aux(token, codec, Command::IngestDay, move |shared| {
                    serve_ingest(shared, rows)
                })
            }
            Request::Snapshot => self.submit_aux(token, codec, Command::Snapshot, |shared| {
                serve_snapshot(shared)
            }),
            Request::Stats => {
                let mut snap = self.shared.metrics.snapshot();
                if let Some(shard) = &self.shared.shard {
                    snap.shard = Some(ShardIdentity {
                        index: shard.index as u32,
                        count: shard.plan.num_shards as u32,
                        owned_roads: shard.current.read().view.owned_roads().len() as u64,
                        fingerprint: shard.fingerprint,
                    });
                }
                let response = Response::Stats(snap);
                self.account(command, &response);
                self.reply(token, codec, response);
            }
            Request::Shutdown => {
                let response = Response::ShuttingDown;
                self.account(command, &response);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.close_after_flush = true;
                }
                self.reply(token, codec, response);
                self.shared.shutdown.store(true, Ordering::SeqCst);
            }
        }
    }

    /// The admission-controlled estimate path: hand the request to the
    /// worker pool (bounded queue), or answer `Overloaded` right away.
    fn submit_estimate(
        &mut self,
        token: usize,
        codec: Codec,
        slot_of_day: usize,
        observations: Vec<(u32, f64)>,
        deadline_ms: Option<u64>,
        roads: Option<Vec<u32>>,
    ) {
        let admitted = Instant::now();
        let deadline = deadline_ms
            .or(self.shared.config.default_deadline_ms)
            .map(Duration::from_millis);
        let shared = Arc::clone(&self.shared);
        let port = self.port.clone();
        let job: ServeJob = Box::new(move |scratch: &mut EstimateScratch| {
            let response = if deadline.is_some_and(|d| admitted.elapsed() > d) {
                // Admitted but queued past its deadline: cheaper to
                // drop here than to compute an answer nobody is
                // waiting for.
                error_response(
                    ErrorKind::DeadlineExceeded,
                    "deadline expired while queued".to_string(),
                )
            } else {
                estimate_guarded(
                    &shared,
                    slot_of_day,
                    &observations,
                    roads.as_deref(),
                    scratch,
                )
            };
            // Latency is recorded for every outcome the worker
            // produced — errors included — so the histogram reflects
            // what clients actually waited, not just the happy path.
            shared
                .metrics
                .observe_latency_us(admitted.elapsed().as_micros() as u64);
            port.post(Completion {
                token,
                command: Command::Estimate,
                codec,
                response,
            });
        });
        self.submit_to_pool(token, codec, Command::Estimate, job);
    }

    /// `ESTIMATE_BATCH`: one admission slot, one worker pass over all
    /// items. A failing (even panicking) item degrades to its typed
    /// per-item outcome instead of sinking the batch.
    fn submit_batch(
        &mut self,
        token: usize,
        codec: Codec,
        items: Vec<BatchItem>,
        deadline_ms: Option<u64>,
    ) {
        let admitted = Instant::now();
        let deadline = deadline_ms
            .or(self.shared.config.default_deadline_ms)
            .map(Duration::from_millis);
        let shared = Arc::clone(&self.shared);
        let port = self.port.clone();
        let job: ServeJob = Box::new(move |scratch: &mut EstimateScratch| {
            let response = if deadline.is_some_and(|d| admitted.elapsed() > d) {
                error_response(
                    ErrorKind::DeadlineExceeded,
                    "deadline expired while queued".to_string(),
                )
            } else {
                let outcomes = items
                    .iter()
                    .map(|item| {
                        match estimate_guarded(
                            &shared,
                            item.slot_of_day,
                            &item.observations,
                            item.roads.as_deref(),
                            scratch,
                        ) {
                            Response::Estimate(reply) => BatchOutcome::Estimate(reply),
                            Response::Error { kind, message } => {
                                BatchOutcome::Error { kind, message }
                            }
                            _ => BatchOutcome::Error {
                                kind: ErrorKind::Internal,
                                message: "estimate produced a non-estimate response".to_string(),
                            },
                        }
                    })
                    .collect();
                Response::Batch(outcomes)
            };
            // One latency observation per batch: the histogram tracks
            // frame round-trips, matching what the client waited for.
            shared
                .metrics
                .observe_latency_us(admitted.elapsed().as_micros() as u64);
            port.post(Completion {
                token,
                command: Command::EstimateBatch,
                codec,
                response,
            });
        });
        self.submit_to_pool(token, codec, Command::EstimateBatch, job);
    }

    fn submit_to_pool(&mut self, token: usize, codec: Codec, command: Command, job: ServeJob) {
        match self.shared.pool.try_submit(job) {
            Ok(()) => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.busy = true;
                }
            }
            Err(_rejected_job) => {
                let refused = error_response(
                    ErrorKind::Overloaded,
                    format!(
                        "admission queue full ({} slots)",
                        self.shared.pool.queue_capacity()
                    ),
                );
                self.account(command, &refused);
                self.reply(token, codec, refused);
            }
        }
    }

    /// `INGEST_DAY` / `SNAPSHOT` run on a short-lived aux thread: both
    /// serialize on the train lock anyway, and neither may stall the
    /// event loop for the seconds a retrain can take.
    fn submit_aux(
        &mut self,
        token: usize,
        codec: Codec,
        command: Command,
        work: impl FnOnce(&Arc<Shared>) -> Response + Send + 'static,
    ) {
        let shared = Arc::clone(&self.shared);
        let port = self.port.clone();
        let spawned = std::thread::Builder::new()
            .name("crowdspeedd-aux".to_string())
            .spawn(move || {
                let response = work(&shared);
                port.post(Completion {
                    token,
                    command,
                    codec,
                    response,
                });
            });
        match spawned {
            Ok(handle) => {
                self.aux.push(handle);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.busy = true;
                }
            }
            Err(_) => {
                let refused = error_response(
                    ErrorKind::Overloaded,
                    "cannot spawn worker thread".to_string(),
                );
                self.account(command, &refused);
                self.reply(token, codec, refused);
            }
        }
    }

    /// Delivers finished requests back to their connections.
    fn pump_completions(&mut self) {
        while let Ok(done) = self.completions_rx.try_recv() {
            self.account(done.command, &done.response);
            let Completion {
                token,
                codec,
                response,
                ..
            } = done;
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.busy = false;
            } else {
                // The connection died while its request was in flight;
                // the outcome is already accounted, the bytes have
                // nowhere to go.
                continue;
            }
            self.reply(token, codec, response);
            // Frames pipelined behind the in-flight request may
            // already be buffered.
            self.advance(token);
        }
    }

    /// Mirrors the per-command metric accounting of a response.
    fn account(&self, command: Command, response: &Response) {
        match response {
            Response::Error { kind, message: _ } => {
                self.shared.metrics.error(command);
                match kind {
                    ErrorKind::Overloaded => self.shared.metrics.reject_overload(),
                    ErrorKind::DeadlineExceeded => self.shared.metrics.reject_deadline(),
                    _ => {}
                }
            }
            _ => self.shared.metrics.ok(command),
        }
    }

    /// Encodes `response` with `codec`, queues the frame, and flushes
    /// as much as the socket accepts.
    fn reply(&mut self, token: usize, codec: Codec, response: Response) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let payload = response.encode_with(codec);
        let frame = frame_bytes(codec.version(), &payload);
        if crate::failpoint::fire("conn_write") {
            // Injected short write: emit only the first half of the
            // frame, then sever the socket — the client sees a
            // mid-frame truncation and must poison the connection,
            // exactly as if the daemon died between two TCP segments.
            let half = frame.len() / 2;
            conn.write_buf.extend_from_slice(&frame[..half]);
            conn.sever_after_flush = true;
            conn.close_after_flush = true;
        } else {
            conn.write_buf.extend_from_slice(&frame);
        }
        self.try_flush(token);
    }

    /// Writes pending reply bytes until the socket pushes back.
    /// Returns `false` when the connection was closed (error, or a
    /// completed close/sever-after-flush).
    fn try_flush(&mut self, token: usize) -> bool {
        enum Flushed {
            Dead,
            Partial {
                fd: i32,
                arm: bool,
            },
            Done {
                fd: i32,
                disarm: bool,
                close: bool,
                sever: bool,
            },
        }
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            loop {
                if !conn.has_pending_write() {
                    conn.write_buf.clear();
                    conn.write_pos = 0;
                    break Flushed::Done {
                        fd: conn.stream.as_raw_fd(),
                        disarm: conn.interest_write,
                        close: conn.close_after_flush,
                        sever: conn.sever_after_flush,
                    };
                }
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => break Flushed::Dead,
                    Ok(n) => conn.write_pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        break Flushed::Partial {
                            fd: conn.stream.as_raw_fd(),
                            arm: !conn.interest_write,
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break Flushed::Dead,
                }
            }
        };
        match outcome {
            Flushed::Dead => {
                self.close(token);
                false
            }
            Flushed::Partial { fd, arm } => {
                if arm {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.interest_write = true;
                    }
                    if self.poller.modify(fd, token, Interest::BOTH).is_err() {
                        self.close(token);
                        return false;
                    }
                }
                true
            }
            Flushed::Done {
                fd,
                disarm,
                close,
                sever,
            } => {
                if sever {
                    if let Some(conn) = self.conns.get(&token) {
                        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                    }
                    self.close(token);
                    return false;
                }
                if close {
                    self.close(token);
                    return false;
                }
                if disarm {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.interest_write = false;
                    }
                    if self.poller.modify(fd, token, Interest::READABLE).is_err() {
                        self.close(token);
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Drops connections whose partial frame outlived the read
    /// deadline — a trickling peer (slow loris) cannot pin its
    /// connection slot forever.
    fn check_frame_deadlines(&mut self) {
        let Some(deadline) = self
            .shared
            .config
            .frame_deadline_ms
            .map(Duration::from_millis)
        else {
            return;
        };
        let expired: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.frame_started.is_some_and(|t| t.elapsed() > deadline))
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            self.close(token);
        }
    }

    fn close(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.shared.metrics.conn_closed();
        }
    }
}

/// Sheds a connection the daemon cannot serve: best-effort typed
/// `Overloaded` frame (short write timeout so a deaf peer cannot stall
/// the event loop), then hang up. Counted in `rejected_connections`.
fn refuse_connection(stream: TcpStream, shared: &Arc<Shared>, message: String) {
    shared.metrics.reject_connection();
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = respond(&mut stream, &error_response(ErrorKind::Overloaded, message));
}

/// Continuous-refill token bucket: capacity `max(rps, 1)` tokens,
/// refilled at `rps` tokens/second from elapsed wall time. A fresh
/// bucket starts full, so a burst up to one second's allowance passes
/// before refusals begin.
struct TokenBucket {
    capacity: f64,
    rate: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rps: u32) -> TokenBucket {
        let capacity = f64::from(rps.max(1));
        TokenBucket {
            capacity,
            rate: f64::from(rps),
            tokens: capacity,
            last: Instant::now(),
        }
    }

    fn try_take(&mut self) -> bool {
        let now = Instant::now();
        let refill = now.duration_since(self.last).as_secs_f64() * self.rate;
        self.tokens = (self.tokens + refill).min(self.capacity);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Writes `response` as a JSON frame on a blocking stream; `false`
/// means the connection is dead. Used by connection refusal, where the
/// peer's codec is unknown, so JSON — the compatibility codec — is the
/// right answer.
pub(crate) fn respond(stream: &mut TcpStream, response: &Response) -> bool {
    respond_with(stream, Codec::Json, response)
}

/// [`respond`] in an explicit codec; the router's client-facing
/// threads answer each request in the codec it arrived in.
pub(crate) fn respond_with(stream: &mut TcpStream, codec: Codec, response: &Response) -> bool {
    if crate::failpoint::fire("conn_write") {
        // Injected short write: emit only the first half of the frame,
        // then sever the socket — the client sees a mid-frame
        // truncation and must poison the connection, exactly as if the
        // daemon died between two TCP segments.
        let payload = response.encode_with(codec);
        let frame = frame_bytes(codec.version(), &payload);
        let half = frame.len() / 2;
        let _ = stream.write_all(&frame[..half]);
        let _ = stream.flush();
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return false;
    }
    write_frame_with_version(stream, codec.version(), &response.encode_with(codec)).is_ok()
}

/// Reads and discards `remaining` bytes (a refused frame's body);
/// `false` means the connection died or shutdown fired first.
pub(crate) fn drain(
    stream: &mut TcpStream,
    mut remaining: usize,
    abort: &dyn Fn() -> bool,
) -> bool {
    let mut sink = [0u8; 4096];
    while remaining > 0 {
        let want = remaining.min(sink.len());
        match stream.read(&mut sink[..want]) {
            Ok(0) => return false,
            Ok(n) => remaining -= n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if abort() {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

pub(crate) fn error_response(kind: ErrorKind, message: String) -> Response {
    Response::Error { kind, message }
}

/// One estimate on a worker thread, fenced by the `estimate` failpoint
/// and a panic guard: a panicking estimate must cost exactly one
/// request (or one batch item), not a worker thread.
fn estimate_guarded(
    shared: &Arc<Shared>,
    slot_of_day: usize,
    observations: &[(u32, f64)],
    roads: Option<&[u32]>,
    scratch: &mut EstimateScratch,
) -> Response {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        crate::failpoint::fire("estimate");
        let obs: Vec<(RoadId, f64)> = observations
            .iter()
            .map(|&(road, speed)| (RoadId(road), speed))
            .collect();
        compute_estimate(shared, slot_of_day, &obs, roads, scratch)
    }));
    match outcome {
        Ok(response) => response,
        Err(payload) => {
            // The scratch may be mid-update; rebuild it.
            *scratch = EstimateScratch::new();
            shared.metrics.worker_panic();
            error_response(
                ErrorKind::Internal,
                format!("estimate worker panicked: {}", panic_message(payload)),
            )
        }
    }
}

/// The actual estimate computation, on a worker thread: shard-masked
/// when this daemon is a fleet worker, full-graph otherwise, with an
/// optional road filter subsetting the reply either way.
fn compute_estimate(
    shared: &Shared,
    slot_of_day: usize,
    obs: &[(RoadId, f64)],
    roads: Option<&[u32]>,
    scratch: &mut EstimateScratch,
) -> Response {
    if let Some(shard) = &shared.shard {
        // One read pins a coherent (model, view) pair for the whole
        // request; `INGEST_DAY` swaps the pair atomically.
        let pair = Arc::clone(&shard.current.read());
        let road_ids: Vec<RoadId> = match roads {
            Some(filter) => filter.iter().map(|&r| RoadId(r)).collect(),
            // No filter on a shard worker = every owned road,
            // ascending — the router's all-roads scatter relies on
            // this to keep frames shard-sized.
            None => pair.view.owned_roads().to_vec(),
        };
        return match pair.model.estimator.estimate_shard_with(
            &pair.view,
            slot_of_day,
            obs,
            &road_ids,
            scratch,
        ) {
            Ok(estimate) => {
                shared
                    .metrics
                    .add_ignored_observations(estimate.ignored_observations as u64);
                Response::Estimate(EstimateReply {
                    epoch: pair.model.epoch,
                    speeds: estimate.speeds,
                    p_up: estimate.p_up,
                    trends: estimate.trends,
                    ignored_observations: estimate.ignored_observations as u64,
                    unavailable: Vec::new(),
                })
            }
            Err(CoreError::NoObservations) => error_response(
                ErrorKind::NoObservations,
                "estimation request carried no observations".to_string(),
            ),
            // A road outside the graph, or one this shard does not own:
            // the request was routed wrong, not the daemon broken.
            Err(e @ (CoreError::InvalidRoad(_) | CoreError::ShardConfig(_))) => {
                error_response(ErrorKind::BadRequest, e.to_string())
            }
            Err(e) => error_response(ErrorKind::Internal, e.to_string()),
        };
    }
    let model = shared.model.current();
    match model.estimator.try_estimate(slot_of_day, obs, scratch) {
        Ok(estimate) => {
            // Counted here — on the serve path itself — so the counter
            // behaves identically whether the process trained at
            // startup or resumed from a snapshot.
            shared
                .metrics
                .add_ignored_observations(estimate.ignored_observations as u64);
            let ignored = estimate.ignored_observations as u64;
            match roads {
                None => Response::Estimate(EstimateReply {
                    epoch: model.epoch,
                    speeds: estimate.speeds,
                    p_up: estimate.p_up,
                    trends: estimate.trends,
                    ignored_observations: ignored,
                    unavailable: Vec::new(),
                }),
                Some(filter) => {
                    let n = estimate.speeds.len();
                    if let Some(&bad) = filter.iter().find(|&&r| r as usize >= n) {
                        return error_response(
                            ErrorKind::BadRequest,
                            format!("road {bad} outside the graph ({n} roads)"),
                        );
                    }
                    let pick_f64 = |v: &[f64]| -> Vec<f64> {
                        if v.is_empty() {
                            // Baseline estimators serve no p_up.
                            Vec::new()
                        } else {
                            filter.iter().map(|&r| v[r as usize]).collect()
                        }
                    };
                    Response::Estimate(EstimateReply {
                        epoch: model.epoch,
                        speeds: pick_f64(&estimate.speeds),
                        p_up: pick_f64(&estimate.p_up),
                        trends: if estimate.trends.is_empty() {
                            Vec::new()
                        } else {
                            filter
                                .iter()
                                .map(|&r| estimate.trends[r as usize])
                                .collect()
                        },
                        ignored_observations: ignored,
                        unavailable: Vec::new(),
                    })
                }
            }
        }
        Err(CoreError::NoObservations) => error_response(
            ErrorKind::NoObservations,
            "estimation request carried no observations".to_string(),
        ),
        Err(e) => error_response(ErrorKind::Internal, e.to_string()),
    }
}

/// `INGEST_DAY`: fold a day into the online model, retrain on an aux
/// thread, and atomically publish the new epoch.
fn serve_ingest(shared: &Arc<Shared>, rows: Vec<Vec<f64>>) -> Response {
    let mut train = shared.train.lock();
    let (slots, roads) = train.day_shape();
    if rows.len() != slots || rows.iter().any(|row| row.len() != roads) {
        let got_roads = rows.first().map_or(0, Vec::len);
        return error_response(
            ErrorKind::ShapeMismatch,
            format!(
                "expected {slots} slots x {roads} roads, got {} slots x {} roads",
                rows.len(),
                got_roads
            ),
        );
    }
    let mut day = trafficsim::SpeedField::filled(slots, roads, f64::NAN);
    for (slot, row) in rows.iter().enumerate() {
        for (road, &speed) in row.iter().enumerate() {
            day.set_speed(slot, RoadId(road as u32), speed);
        }
    }
    match train.ingest_and_train(day) {
        Ok(outcome) => {
            let days_ingested = outcome.days_ingested;
            shared.metrics.retrain(outcome.mode, &outcome.stats);
            let epoch = shared.model.publish(outcome.estimator);
            shared.metrics.set_epoch(epoch);
            shared.metrics.set_days_ingested(days_ingested);
            if outcome.mode == RetrainMode::FullRebootstrap {
                // Record which published epoch the rebootstrap landed
                // on, so operators can line `drift_last_rebootstrap_
                // epoch` up with the serving history.
                train.record_rebootstrap_epoch(epoch);
            }
            shared.metrics.set_drift(train.drift());
            // Persist while still holding the train lock: the written
            // day history, online counters, and published model cannot
            // skew against each other.
            let model = shared.model.current();
            if let Some(shard) = &shared.shard {
                // Rebuild the owned-road view against the new epoch
                // (live correlation components may have changed) and
                // swap the (model, view) pair as one unit, still under
                // the train lock.
                match model.estimator.shard_view(&shard.plan, shard.index) {
                    Ok(view) => {
                        *shard.current.write() = Arc::new(ShardModel {
                            model: Arc::clone(&model),
                            view,
                        });
                    }
                    Err(e) => {
                        // The previous coherent pair keeps serving;
                        // only a plan/graph mismatch can land here and
                        // spawn would have refused that outright.
                        shared.metrics.retrain_failure();
                        return error_response(
                            ErrorKind::Internal,
                            format!("shard view rebuild failed: {e}; previous epoch still serving"),
                        );
                    }
                }
            }
            persist_epoch(shared, &train, &model.estimator, epoch);
            Response::Ingested {
                epoch,
                days_ingested,
            }
        }
        Err(RetrainError::Core(e)) => {
            let kind = match e {
                CoreError::ShapeMismatch { .. } => ErrorKind::ShapeMismatch,
                _ => {
                    shared.metrics.retrain_failure();
                    ErrorKind::Internal
                }
            };
            error_response(kind, e.to_string())
        }
        // The panic was contained and the train state rolled back; the
        // previously published epoch keeps serving untouched.
        Err(e @ RetrainError::Panicked(_)) => {
            shared.metrics.retrain_failure();
            error_response(
                ErrorKind::Internal,
                format!("{e}; previous model epoch still serving"),
            )
        }
    }
}

/// `SNAPSHOT`: force a write of the currently published epoch. Taking
/// the train lock pins the model/train pair — `INGEST_DAY` publishes
/// under the same lock, so the file can never mix an old model with
/// new counters.
fn serve_snapshot(shared: &Arc<Shared>) -> Response {
    if shared.config.snapshot_dir.is_none() {
        return error_response(
            ErrorKind::SnapshotUnavailable,
            "daemon started without a snapshot directory".to_string(),
        );
    }
    let train = shared.train.lock();
    let model = shared.model.current();
    match persist_epoch(shared, &train, &model.estimator, model.epoch) {
        Some(path) => Response::Snapshotted {
            epoch: model.epoch,
            path: path.display().to_string(),
        },
        None => error_response(ErrorKind::Internal, "snapshot write failed".to_string()),
    }
}
