//! The `crowdspeedd` daemon: acceptor, per-connection handlers, and
//! the admission-controlled serving path.
//!
//! # Thread layout
//!
//! ```text
//!            ┌──────────┐  accept   ┌─────────────────────┐
//!   TCP ───▶ │ acceptor │ ────────▶ │ handler (per conn)  │──┐
//!            └──────────┘           │ decode / respond    │  │ try_submit
//!                                   └─────────────────────┘  ▼
//!                                        ▲            ┌─────────────┐
//!                                        │ reply via  │  ServePool  │
//!                                        └────────────│  workers    │
//!                                          rendezvous │ (1 scratch  │
//!                                            channel  │  each)      │
//!                                                     └─────────────┘
//! ```
//!
//! `ESTIMATE` is the only command that crosses into the worker pool;
//! it is the latency-sensitive hot path and the only one subject to
//! admission control and deadlines. `INGEST_DAY` retrains on the
//! *connection* thread under the [`TrainState`] mutex — expensive, but
//! off the serving path by construction — and publishes the new model
//! with a pointer swap. `STATS` and `SHUTDOWN` are answered inline.
//!
//! # Backpressure policy
//!
//! The worker queue is a bounded channel sized by
//! [`DaemonConfig::queue_capacity`]. When it is full the daemon does
//! not block the connection: it immediately answers
//! [`ErrorKind::Overloaded`] and counts the rejection. Clients own the
//! retry policy; the daemon's only promise is a fast, typed "no".

use crate::metrics::{Command, Metrics};
use crate::protocol::{
    read_frame_with_deadline, write_frame, ErrorKind, EstimateReply, Request, Response,
    ShardIdentity, WireError, DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::snapshot::{self, RejectReason};
use crate::state::{panic_message, ModelEpoch, ModelSlot, RetrainError, TrainInputs, TrainState};
use crate::ServerError;
use crowdspeed::prelude::*;
use crowdspeed::shard::{ShardPlan, ShardView};
use crowdspeed::CoreError;
use parking_lot::{Mutex, RwLock};
use roadnet::RoadId;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables for [`Daemon::spawn`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`DaemonHandle::addr`]).
    pub addr: String,
    /// Estimate worker threads (each owns one `EstimateScratch`).
    pub workers: usize,
    /// Bounded admission queue depth; a full queue answers
    /// `Overloaded` instead of blocking.
    pub queue_capacity: usize,
    /// Frames declaring more payload than this are refused.
    pub max_frame_bytes: usize,
    /// Deadline applied to estimates that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Maximum simultaneous connections. The connection past the cap
    /// is answered with a typed [`ErrorKind::Overloaded`] frame and
    /// closed instead of spawning an unbounded number of handler
    /// threads (one slow client per thread is how daemons run out of
    /// threads under a flood).
    pub max_connections: usize,
    /// Directory for persistent model snapshots. `Some` makes every
    /// epoch publish write a snapshot atomically, and lets
    /// [`Daemon::spawn_from`] resume from the newest valid one instead
    /// of retraining. `None` disables persistence (and `SNAPSHOT`
    /// answers [`ErrorKind::SnapshotUnavailable`]).
    pub snapshot_dir: Option<PathBuf>,
    /// How many snapshot files to retain (oldest pruned first).
    pub snapshot_keep: usize,
    /// Per-frame read deadline: once the first byte of a frame
    /// arrives, the rest must follow within this budget or the
    /// connection is dropped — a trickling peer (slow loris) cannot
    /// pin a handler thread forever. `None` disables the deadline.
    pub frame_deadline_ms: Option<u64>,
    /// Per-connection token-bucket rate limit in requests/second.
    /// A connection exceeding it gets typed [`ErrorKind::RateLimited`]
    /// refusals (the connection survives); `SHUTDOWN` is exempt so an
    /// operator can always stop a flooded daemon. `None` disables
    /// limiting.
    pub rate_limit_rps: Option<u32>,
    /// Runs this daemon as one shard worker of a fleet: it trains the
    /// full model exactly as an unsharded daemon would (that is what
    /// makes router↔single-daemon bit-identity possible) but serves
    /// only the roads its slice of the plan owns, from a masked view
    /// that skips inference work outside its correlation components.
    pub shard: Option<ShardSpec>,
}

/// Which slice of a [`ShardPlan`] a shard worker serves.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// This worker's shard index, `< plan.num_shards`.
    pub index: usize,
    /// The fleet-wide plan; every worker and the router must hold the
    /// same plan (cross-checked by fingerprint through `STATS`).
    pub plan: ShardPlan,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            default_deadline_ms: None,
            max_connections: 1024,
            snapshot_dir: None,
            snapshot_keep: 3,
            frame_deadline_ms: Some(30_000),
            rate_limit_rps: None,
            shard: None,
        }
    }
}

/// The atomically-swapped `(model, view)` pair a shard worker serves
/// from. Rebuilding the view and swapping the pair as one unit (under
/// the train lock, like every publish) means a reader can never mix
/// epoch N's estimator with epoch N-1's active-component mask.
struct ShardModel {
    model: Arc<ModelEpoch>,
    view: ShardView,
}

/// Shard-serving state hung off [`Shared`].
struct ShardServing {
    index: usize,
    plan: ShardPlan,
    fingerprint: u64,
    current: RwLock<Arc<ShardModel>>,
}

/// State shared by the acceptor, connection handlers, and workers.
struct Shared {
    model: ModelSlot,
    train: Mutex<TrainState>,
    metrics: Metrics,
    shutdown: AtomicBool,
    pool: ServePool,
    config: DaemonConfig,
    /// Config hash stamped into every snapshot this process writes
    /// (computed once at spawn; see [`snapshot::config_hash`]).
    snapshot_hash: u64,
    /// Live connection handlers, bounded by `config.max_connections`.
    active_conns: AtomicUsize,
    /// Present when this daemon is a shard worker.
    shard: Option<ShardServing>,
}

/// Decrements the live-connection count when a handler exits, however
/// it exits (return, panic, or unwound assertion).
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running daemon (see [`Daemon::spawn`]).
pub struct Daemon;

/// Handle to a spawned daemon: its bound address and lifecycle control.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Trains the initial model from `train_state`, binds the listener,
    /// and starts the acceptor. Returns once the daemon is reachable.
    pub fn spawn(
        mut train_state: TrainState,
        config: DaemonConfig,
    ) -> Result<DaemonHandle, ServerError> {
        let estimator = train_state.train().map_err(ServerError::Core)?;
        spawn_inner(train_state, estimator, 1, false, Vec::new(), config)
    }

    /// Starts a daemon that resumes from the newest valid snapshot in
    /// [`DaemonConfig::snapshot_dir`] when one exists — skipping both
    /// the online-correlation bootstrap and the initial train — and
    /// falls back to [`Daemon::spawn`]'s train-from-scratch path when
    /// the directory is empty, missing, or every file is rejected
    /// (each rejection lands in the `snapshot_rejected_*` counters
    /// with its typed reason). A resumed daemon answers its first
    /// `ESTIMATE` bit-identically to the process that wrote the file.
    pub fn spawn_from(
        inputs: TrainInputs,
        config: DaemonConfig,
    ) -> Result<DaemonHandle, ServerError> {
        let expected = snapshot::config_hash(
            inputs.graph.num_roads(),
            inputs.history.clock().slots_per_day,
            &inputs.seeds,
            &inputs.corr_config,
            &inputs.config,
        );
        let mut rejects: Vec<RejectReason> = Vec::new();
        let loaded = config.snapshot_dir.as_deref().and_then(|dir| {
            snapshot::load_newest(dir, expected, |reason, _path| rejects.push(reason))
        });
        match loaded {
            Some(outcome) => {
                let payload = outcome.payload;
                let train_state = TrainState::resume(
                    inputs.graph,
                    inputs.seeds,
                    inputs.config,
                    payload.clock,
                    payload.days,
                    payload.online,
                    payload.context,
                );
                spawn_inner(
                    train_state,
                    payload.estimator,
                    payload.epoch,
                    true,
                    rejects,
                    config,
                )
            }
            None => {
                let mut train_state = TrainState::new(
                    inputs.graph,
                    &inputs.history,
                    inputs.seeds,
                    &inputs.corr_config,
                    inputs.config,
                );
                let estimator = train_state.train().map_err(ServerError::Core)?;
                spawn_inner(train_state, estimator, 1, false, rejects, config)
            }
        }
    }
}

/// Shared tail of [`Daemon::spawn`] / [`Daemon::spawn_from`]: binds
/// the listener, seeds the metrics (resume gauge + reject counters),
/// persists the initial epoch when it was freshly trained, and starts
/// the acceptor.
fn spawn_inner(
    train_state: TrainState,
    estimator: TrafficEstimator,
    epoch: u64,
    resumed: bool,
    rejects: Vec<RejectReason>,
    config: DaemonConfig,
) -> Result<DaemonHandle, ServerError> {
    let snapshot_hash = snapshot::train_state_hash(&train_state);
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let metrics = Metrics::new(epoch, train_state.days_ingested());
    metrics.set_snapshot_resumed(resumed);
    for reason in rejects {
        metrics.snapshot_reject(reason);
    }
    let model = ModelSlot::with_epoch(estimator, epoch);
    let shard = match &config.shard {
        Some(spec) => {
            let current = model.current();
            let view = current
                .estimator
                .shard_view(&spec.plan, spec.index)
                .map_err(ServerError::Core)?;
            Some(ShardServing {
                index: spec.index,
                fingerprint: spec.plan.fingerprint(),
                plan: spec.plan.clone(),
                current: RwLock::new(Arc::new(ShardModel {
                    model: current,
                    view,
                })),
            })
        }
        None => None,
    };
    let shared = Arc::new(Shared {
        model,
        train: Mutex::new(train_state),
        metrics,
        shutdown: AtomicBool::new(false),
        pool: ServePool::new(config.workers.max(1), config.queue_capacity.max(1)),
        config,
        snapshot_hash,
        active_conns: AtomicUsize::new(0),
        shard,
    });
    if !resumed && shared.config.snapshot_dir.is_some() {
        // Persist the freshly trained epoch before accepting traffic,
        // so even a crash right after startup has a resume point.
        let model = shared.model.current();
        let train = shared.train.lock();
        persist_epoch(&shared, &train, &model.estimator, model.epoch);
    }
    let acceptor_shared = Arc::clone(&shared);
    let acceptor = std::thread::Builder::new()
        .name("crowdspeedd-accept".to_string())
        .spawn(move || accept_loop(listener, acceptor_shared))
        .expect("spawn acceptor thread");
    Ok(DaemonHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
    })
}

/// Encodes and atomically writes one epoch to the snapshot directory,
/// counting the outcome. Returns the written path, or `None` when no
/// directory is configured or the write failed (serving continues
/// either way — persistence is never allowed to take the daemon down).
fn persist_epoch(
    shared: &Shared,
    train: &TrainState,
    estimator: &TrafficEstimator,
    epoch: u64,
) -> Option<PathBuf> {
    let dir = shared.config.snapshot_dir.as_deref()?;
    let bytes = snapshot::encode_snapshot(
        epoch,
        train.clock(),
        train.days(),
        train.online(),
        estimator,
        train.context(),
        shared.snapshot_hash,
    );
    match snapshot::write_snapshot(dir, shared.config.snapshot_keep, epoch, &bytes) {
        Ok(path) => {
            shared.metrics.snapshot_write();
            Some(path)
        }
        Err(_) => {
            shared.metrics.snapshot_write_failure();
            None
        }
    }
}

impl DaemonHandle {
    /// The address the daemon is listening on (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current model epoch (the `STATS` gauge).
    pub fn epoch(&self) -> u64 {
        self.shared.metrics.epoch()
    }

    /// Asks the daemon to stop: the acceptor refuses new connections
    /// and handlers abort at their next read-timeout tick.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Signals shutdown and blocks until the acceptor (and every
    /// connection handler it spawned) has exited.
    pub fn join(mut self) {
        self.shutdown();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until the daemon stops on its own (a `SHUTDOWN` frame or
    /// a [`DaemonHandle::shutdown`] from another thread) — the
    /// foreground mode of the `crowdspeed daemon` subcommand.
    pub fn wait(mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reap finished handlers so a long-lived daemon does
                // not accumulate one join handle per past connection.
                handlers.retain(|h| !h.is_finished());
                let cap = shared.config.max_connections.max(1);
                if shared.active_conns.load(Ordering::SeqCst) >= cap {
                    refuse_connection(stream, &shared, format!("connection limit reached ({cap})"));
                    continue;
                }
                if crate::failpoint::fire("conn_spawn") {
                    // Injected thread exhaustion: same shedding path a
                    // real spawn failure takes, but the stream is still
                    // in hand so the peer gets the typed frame.
                    refuse_connection(
                        stream,
                        &shared,
                        "cannot spawn connection handler".to_string(),
                    );
                    continue;
                }
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("crowdspeedd-conn".to_string())
                    .spawn(move || {
                        let _guard = ConnGuard(Arc::clone(&conn_shared));
                        handle_connection(stream, conn_shared);
                    });
                match spawned {
                    Ok(handle) => handlers.push(handle),
                    // Thread exhaustion is overload, not a reason to
                    // kill the acceptor deaf: count the shed connection
                    // and keep listening. (`spawn` consumed the closure
                    // — and the stream with it — so the peer sees a
                    // hang-up rather than a typed frame here.)
                    Err(_) => {
                        shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                        shared.metrics.reject_connection();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Reap here too: an idle daemon must not hold one
                // exited-thread handle per historical connection.
                handlers.retain(|h| !h.is_finished());
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Sheds a connection the daemon cannot serve: best-effort typed
/// `Overloaded` frame (short write timeout so a deaf peer cannot stall
/// the acceptor), then hang up. Counted in `rejected_connections`.
fn refuse_connection(mut stream: TcpStream, shared: &Arc<Shared>, message: String) {
    shared.metrics.reject_connection();
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = respond(&mut stream, &error_response(ErrorKind::Overloaded, message));
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    // Short read timeouts keep handlers responsive to shutdown without
    // busy-polling; `read_frame` retries timeouts via its abort hook.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let shutdown = {
        let shared = Arc::clone(&shared);
        move || shared.shutdown.load(Ordering::SeqCst)
    };
    let frame_deadline = shared.config.frame_deadline_ms.map(Duration::from_millis);
    // Each connection gets its own bucket: one flooding client starves
    // itself, not its neighbours.
    let mut bucket = shared.config.rate_limit_rps.map(TokenBucket::new);
    loop {
        let (version, payload) = match read_frame_with_deadline(
            &mut stream,
            shared.config.max_frame_bytes,
            &shutdown,
            frame_deadline,
        ) {
            Ok(frame) => frame,
            Err(WireError::Oversized { declared, max }) => {
                // Closing with unread bytes in the receive buffer
                // makes TCP reset the connection, destroying the
                // queued error response. Drain modestly oversized
                // frames so the typed error is actually delivered;
                // pathological lengths just get the hang-up.
                const DRAIN_CAP: usize = 1 << 20;
                if declared < DRAIN_CAP && drain(&mut stream, declared + 1, &shutdown) {
                    let _ = respond(
                        &mut stream,
                        &error_response(
                            ErrorKind::FrameTooLarge,
                            format!("frame of {declared} bytes exceeds limit of {max}"),
                        ),
                    );
                }
                // Either way the stream cannot be resynchronised.
                return;
            }
            // Clean close, mid-frame close, shutdown, expired
            // frame deadline (slow loris — the thread is reclaimed
            // here), or I/O failure: nothing sensible left to say.
            Err(_) => return,
        };
        if version != PROTOCOL_VERSION {
            let survived = respond(
                &mut stream,
                &error_response(
                    ErrorKind::UnsupportedVersion,
                    format!("speak version {PROTOCOL_VERSION}, got {version}"),
                ),
            );
            if survived {
                continue;
            }
            return;
        }
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err((kind, message)) => {
                // Unknown command / malformed body: typed error, but
                // the connection survives (framing is still intact).
                if respond(&mut stream, &error_response(kind, message)) {
                    continue;
                }
                return;
            }
        };
        let command = match &request {
            Request::Estimate { .. } => Command::Estimate,
            Request::IngestDay { .. } => Command::IngestDay,
            Request::Stats => Command::Stats,
            Request::Shutdown => Command::Shutdown,
            Request::Snapshot => Command::Snapshot,
        };
        shared.metrics.received(command);
        // The bucket admits after decode (a malformed flood already
        // fails cheaply above) and never gates `SHUTDOWN`: an operator
        // must always be able to stop a flooded daemon.
        if command != Command::Shutdown {
            if let Some(bucket) = &mut bucket {
                if !bucket.try_take() {
                    shared.metrics.rate_limited();
                    shared.metrics.error(command);
                    let refused = error_response(
                        ErrorKind::RateLimited,
                        format!(
                            "connection exceeded {} requests/second",
                            shared.config.rate_limit_rps.unwrap_or(0)
                        ),
                    );
                    if respond(&mut stream, &refused) {
                        continue;
                    }
                    return;
                }
            }
        }
        let response = match request {
            Request::Estimate {
                slot_of_day,
                observations,
                deadline_ms,
                roads,
            } => serve_estimate(&shared, slot_of_day, observations, deadline_ms, roads),
            Request::IngestDay { rows } => serve_ingest(&shared, rows),
            Request::Stats => {
                let mut snap = shared.metrics.snapshot();
                if let Some(shard) = &shared.shard {
                    snap.shard = Some(ShardIdentity {
                        index: shard.index as u32,
                        count: shard.plan.num_shards as u32,
                        owned_roads: shard.current.read().view.owned_roads().len() as u64,
                        fingerprint: shard.fingerprint,
                    });
                }
                Response::Stats(snap)
            }
            Request::Shutdown => Response::ShuttingDown,
            Request::Snapshot => serve_snapshot(&shared),
        };
        match &response {
            Response::Error { kind, message: _ } => {
                shared.metrics.error(command);
                match kind {
                    ErrorKind::Overloaded => shared.metrics.reject_overload(),
                    ErrorKind::DeadlineExceeded => shared.metrics.reject_deadline(),
                    _ => {}
                }
            }
            _ => shared.metrics.ok(command),
        }
        let survived = respond(&mut stream, &response);
        if matches!(response, Response::ShuttingDown) {
            shared.shutdown.store(true, Ordering::SeqCst);
            return;
        }
        if !survived {
            return;
        }
    }
}

/// Continuous-refill token bucket: capacity `max(rps, 1)` tokens,
/// refilled at `rps` tokens/second from elapsed wall time. A fresh
/// bucket starts full, so a burst up to one second's allowance passes
/// before refusals begin.
struct TokenBucket {
    capacity: f64,
    rate: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rps: u32) -> TokenBucket {
        let capacity = f64::from(rps.max(1));
        TokenBucket {
            capacity,
            rate: f64::from(rps),
            tokens: capacity,
            last: Instant::now(),
        }
    }

    fn try_take(&mut self) -> bool {
        let now = Instant::now();
        let refill = now.duration_since(self.last).as_secs_f64() * self.rate;
        self.tokens = (self.tokens + refill).min(self.capacity);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Writes `response` as a frame; `false` means the connection is dead.
pub(crate) fn respond(stream: &mut TcpStream, response: &Response) -> bool {
    if crate::failpoint::fire("conn_write") {
        // Injected short write: emit only the first half of the frame,
        // then sever the socket — the client sees a mid-frame
        // truncation and must poison the connection, exactly as if the
        // daemon died between two TCP segments.
        use std::io::Write;
        let payload = response.encode();
        let mut frame = Vec::with_capacity(5 + payload.len());
        frame.extend_from_slice(&((payload.len() + 1) as u32).to_be_bytes());
        frame.push(PROTOCOL_VERSION);
        frame.extend_from_slice(&payload);
        let half = frame.len() / 2;
        let _ = stream.write_all(&frame[..half]);
        let _ = stream.flush();
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return false;
    }
    write_frame(stream, &response.encode()).is_ok()
}

/// Reads and discards `remaining` bytes (a refused frame's body);
/// `false` means the connection died or shutdown fired first.
pub(crate) fn drain(
    stream: &mut TcpStream,
    mut remaining: usize,
    abort: &dyn Fn() -> bool,
) -> bool {
    use std::io::Read;
    let mut sink = [0u8; 4096];
    while remaining > 0 {
        let want = remaining.min(sink.len());
        match stream.read(&mut sink[..want]) {
            Ok(0) => return false,
            Ok(n) => remaining -= n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if abort() {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

pub(crate) fn error_response(kind: ErrorKind, message: String) -> Response {
    Response::Error { kind, message }
}

/// The actual estimate computation, on a worker thread: shard-masked
/// when this daemon is a fleet worker, full-graph otherwise, with an
/// optional road filter subsetting the reply either way.
fn compute_estimate(
    shared: &Shared,
    slot_of_day: usize,
    obs: &[(RoadId, f64)],
    roads: Option<&[u32]>,
    scratch: &mut EstimateScratch,
) -> Response {
    if let Some(shard) = &shared.shard {
        // One read pins a coherent (model, view) pair for the whole
        // request; `INGEST_DAY` swaps the pair atomically.
        let pair = Arc::clone(&shard.current.read());
        let road_ids: Vec<RoadId> = match roads {
            Some(filter) => filter.iter().map(|&r| RoadId(r)).collect(),
            // No filter on a shard worker = every owned road,
            // ascending — the router's all-roads scatter relies on
            // this to keep frames shard-sized.
            None => pair.view.owned_roads().to_vec(),
        };
        return match pair.model.estimator.estimate_shard_with(
            &pair.view,
            slot_of_day,
            obs,
            &road_ids,
            scratch,
        ) {
            Ok(estimate) => {
                shared
                    .metrics
                    .add_ignored_observations(estimate.ignored_observations as u64);
                Response::Estimate(EstimateReply {
                    epoch: pair.model.epoch,
                    speeds: estimate.speeds,
                    p_up: estimate.p_up,
                    trends: estimate.trends,
                    ignored_observations: estimate.ignored_observations as u64,
                    unavailable: Vec::new(),
                })
            }
            Err(CoreError::NoObservations) => error_response(
                ErrorKind::NoObservations,
                "estimation request carried no observations".to_string(),
            ),
            // A road outside the graph, or one this shard does not own:
            // the request was routed wrong, not the daemon broken.
            Err(e @ (CoreError::InvalidRoad(_) | CoreError::ShardConfig(_))) => {
                error_response(ErrorKind::BadRequest, e.to_string())
            }
            Err(e) => error_response(ErrorKind::Internal, e.to_string()),
        };
    }
    let model = shared.model.current();
    match model.estimator.try_estimate(slot_of_day, obs, scratch) {
        Ok(estimate) => {
            // Counted here — on the serve path itself — so the counter
            // behaves identically whether the process trained at
            // startup or resumed from a snapshot.
            shared
                .metrics
                .add_ignored_observations(estimate.ignored_observations as u64);
            let ignored = estimate.ignored_observations as u64;
            match roads {
                None => Response::Estimate(EstimateReply {
                    epoch: model.epoch,
                    speeds: estimate.speeds,
                    p_up: estimate.p_up,
                    trends: estimate.trends,
                    ignored_observations: ignored,
                    unavailable: Vec::new(),
                }),
                Some(filter) => {
                    let n = estimate.speeds.len();
                    if let Some(&bad) = filter.iter().find(|&&r| r as usize >= n) {
                        return error_response(
                            ErrorKind::BadRequest,
                            format!("road {bad} outside the graph ({n} roads)"),
                        );
                    }
                    let pick_f64 = |v: &[f64]| -> Vec<f64> {
                        if v.is_empty() {
                            // Baseline estimators serve no p_up.
                            Vec::new()
                        } else {
                            filter.iter().map(|&r| v[r as usize]).collect()
                        }
                    };
                    Response::Estimate(EstimateReply {
                        epoch: model.epoch,
                        speeds: pick_f64(&estimate.speeds),
                        p_up: pick_f64(&estimate.p_up),
                        trends: if estimate.trends.is_empty() {
                            Vec::new()
                        } else {
                            filter
                                .iter()
                                .map(|&r| estimate.trends[r as usize])
                                .collect()
                        },
                        ignored_observations: ignored,
                        unavailable: Vec::new(),
                    })
                }
            }
        }
        Err(CoreError::NoObservations) => error_response(
            ErrorKind::NoObservations,
            "estimation request carried no observations".to_string(),
        ),
        Err(e) => error_response(ErrorKind::Internal, e.to_string()),
    }
}

/// The admission-controlled estimate path: hand the request to the
/// worker pool (bounded queue), or answer `Overloaded` right away.
fn serve_estimate(
    shared: &Arc<Shared>,
    slot_of_day: usize,
    observations: Vec<(u32, f64)>,
    deadline_ms: Option<u64>,
    roads: Option<Vec<u32>>,
) -> Response {
    let admitted = Instant::now();
    let deadline = deadline_ms
        .or(shared.config.default_deadline_ms)
        .map(Duration::from_millis);
    // Rendezvous channel: the worker always sends exactly one reply.
    let (reply_tx, reply_rx) = sync_channel::<Response>(1);
    let job_shared = Arc::clone(shared);
    let job: ServeJob = Box::new(move |scratch: &mut EstimateScratch| {
        let response = if deadline.is_some_and(|d| admitted.elapsed() > d) {
            // Admitted but queued past its deadline: cheaper to drop
            // here than to compute an answer nobody is waiting for.
            error_response(
                ErrorKind::DeadlineExceeded,
                "deadline expired while queued".to_string(),
            )
        } else {
            // A panicking estimate must cost exactly one request, not a
            // worker thread: catch it here, answer a typed `Internal`,
            // and rebuild the scratch (its buffers may be mid-update).
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                crate::failpoint::fire("estimate");
                let obs: Vec<(RoadId, f64)> = observations
                    .iter()
                    .map(|&(road, speed)| (RoadId(road), speed))
                    .collect();
                compute_estimate(&job_shared, slot_of_day, &obs, roads.as_deref(), scratch)
            }));
            match outcome {
                Ok(response) => response,
                Err(payload) => {
                    *scratch = EstimateScratch::new();
                    job_shared.metrics.worker_panic();
                    error_response(
                        ErrorKind::Internal,
                        format!("estimate worker panicked: {}", panic_message(payload)),
                    )
                }
            }
        };
        // Latency is recorded for every outcome the worker produced —
        // errors included — so the histogram reflects what clients
        // actually waited, not just the happy path.
        job_shared
            .metrics
            .observe_latency_us(admitted.elapsed().as_micros() as u64);
        let _ = reply_tx.send(response);
    });
    match shared.pool.try_submit(job) {
        Ok(()) => reply_rx.recv().unwrap_or_else(|_| {
            error_response(
                ErrorKind::Internal,
                "worker pool dropped the request".to_string(),
            )
        }),
        Err(_rejected_job) => error_response(
            ErrorKind::Overloaded,
            format!(
                "admission queue full ({} slots)",
                shared.pool.queue_capacity()
            ),
        ),
    }
}

/// `INGEST_DAY`: fold a day into the online model, retrain on this
/// connection's thread, and atomically publish the new epoch.
fn serve_ingest(shared: &Arc<Shared>, rows: Vec<Vec<f64>>) -> Response {
    let mut train = shared.train.lock();
    let (slots, roads) = train.day_shape();
    if rows.len() != slots || rows.iter().any(|row| row.len() != roads) {
        let got_roads = rows.first().map_or(0, Vec::len);
        return error_response(
            ErrorKind::ShapeMismatch,
            format!(
                "expected {slots} slots x {roads} roads, got {} slots x {} roads",
                rows.len(),
                got_roads
            ),
        );
    }
    let mut day = trafficsim::SpeedField::filled(slots, roads, f64::NAN);
    for (slot, row) in rows.iter().enumerate() {
        for (road, &speed) in row.iter().enumerate() {
            day.set_speed(slot, RoadId(road as u32), speed);
        }
    }
    match train.ingest_and_train(day) {
        Ok(outcome) => {
            let days_ingested = outcome.days_ingested;
            shared.metrics.retrain(outcome.mode, &outcome.stats);
            let epoch = shared.model.publish(outcome.estimator);
            shared.metrics.set_epoch(epoch);
            shared.metrics.set_days_ingested(days_ingested);
            // Persist while still holding the train lock: the written
            // day history, online counters, and published model cannot
            // skew against each other.
            let model = shared.model.current();
            if let Some(shard) = &shared.shard {
                // Rebuild the owned-road view against the new epoch
                // (live correlation components may have changed) and
                // swap the (model, view) pair as one unit, still under
                // the train lock.
                match model.estimator.shard_view(&shard.plan, shard.index) {
                    Ok(view) => {
                        *shard.current.write() = Arc::new(ShardModel {
                            model: Arc::clone(&model),
                            view,
                        });
                    }
                    Err(e) => {
                        // The previous coherent pair keeps serving;
                        // only a plan/graph mismatch can land here and
                        // spawn would have refused that outright.
                        shared.metrics.retrain_failure();
                        return error_response(
                            ErrorKind::Internal,
                            format!("shard view rebuild failed: {e}; previous epoch still serving"),
                        );
                    }
                }
            }
            persist_epoch(shared, &train, &model.estimator, epoch);
            Response::Ingested {
                epoch,
                days_ingested,
            }
        }
        Err(RetrainError::Core(e)) => {
            let kind = match e {
                CoreError::ShapeMismatch { .. } => ErrorKind::ShapeMismatch,
                _ => {
                    shared.metrics.retrain_failure();
                    ErrorKind::Internal
                }
            };
            error_response(kind, e.to_string())
        }
        // The panic was contained and the train state rolled back; the
        // previously published epoch keeps serving untouched.
        Err(e @ RetrainError::Panicked(_)) => {
            shared.metrics.retrain_failure();
            error_response(
                ErrorKind::Internal,
                format!("{e}; previous model epoch still serving"),
            )
        }
    }
}

/// `SNAPSHOT`: force a write of the currently published epoch. Taking
/// the train lock pins the model/train pair — `INGEST_DAY` publishes
/// under the same lock, so the file can never mix an old model with
/// new counters.
fn serve_snapshot(shared: &Arc<Shared>) -> Response {
    if shared.config.snapshot_dir.is_none() {
        return error_response(
            ErrorKind::SnapshotUnavailable,
            "daemon started without a snapshot directory".to_string(),
        );
    }
    let train = shared.train.lock();
    let model = shared.model.current();
    match persist_epoch(shared, &train, &model.estimator, model.epoch) {
        Some(path) => Response::Snapshotted {
            epoch: model.epoch,
            path: path.display().to_string(),
        },
        None => error_response(ErrorKind::Internal, "snapshot write failed".to_string()),
    }
}
