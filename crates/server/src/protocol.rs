//! The `crowdspeedd` wire protocol.
//!
//! Every message is one **frame**:
//!
//! ```text
//! ┌────────────────┬───────────┬──────────────────────────┐
//! │ length: u32 BE │ version:u8│ payload                  │
//! └────────────────┴───────────┴──────────────────────────┘
//!        length counts the version byte + payload
//! ```
//!
//! The version byte rides in the binary header — not the payload — so
//! a server can refuse a frame from the future without parsing it, and
//! it doubles as the **codec selector**: version 1 payloads are
//! compact JSON, version 2 payloads are the binary codec. A daemon
//! answers in whichever codec the request arrived in, so old JSON
//! clients and new binary clients share one port.
//!
//! Version-1 payloads are JSON objects with a `"cmd"` (requests) or
//! `"ok"` / `"err"` (responses) discriminator; unknown commands decode
//! into a typed error and leave the connection usable.
//!
//! Version-2 payloads are a fixed-layout binary encoding: a leading
//! tag byte, little-endian fixed-width integers, `u32`-length-prefixed
//! strings and vectors, and `f64`s as their raw IEEE-754 bits — no
//! text formatting on the hot path at all.
//!
//! Speeds cross the wire with Rust's shortest round-trip `f64`
//! formatting in JSON (see [`crate::json`]) and as verbatim bits in
//! binary, so an estimate served over TCP is bit-identical to one
//! computed in-process **in either codec** — the `daemon` integration
//! suite extends the repo's `serving_equivalence` guarantee across the
//! wire on exactly this property, and the codec-equivalence proptests
//! pin the two codecs against each other.

use crate::json::{nan_to_json, num_or_nan, Json};
use std::io::{Read, Write};

/// Protocol version spoken by this build.
pub const PROTOCOL_VERSION: u8 = 1;

/// Frame version byte of the binary codec. A version-2 frame carries
/// the binary payload encoding instead of JSON; the daemon answers in
/// the codec the request arrived in.
pub const BINARY_PROTOCOL_VERSION: u8 = 2;

/// Which payload codec a peer speaks, selected per frame by the
/// version byte in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Version-1 frames: compact JSON payloads (the original protocol,
    /// fully supported forever).
    #[default]
    Json,
    /// Version-2 frames: fixed-layout binary payloads (`f64` bits
    /// travel verbatim; no text formatting on the hot path).
    Binary,
}

impl Codec {
    /// The version byte this codec stamps into frame headers.
    pub fn version(self) -> u8 {
        match self {
            Codec::Json => PROTOCOL_VERSION,
            Codec::Binary => BINARY_PROTOCOL_VERSION,
        }
    }

    /// Maps a frame header version byte back to its codec.
    pub fn from_version(version: u8) -> Option<Codec> {
        match version {
            PROTOCOL_VERSION => Some(Codec::Json),
            BINARY_PROTOCOL_VERSION => Some(Codec::Binary),
            _ => None,
        }
    }

    /// Stable display name (used by metrics and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            Codec::Json => "json",
            Codec::Binary => "binary",
        }
    }
}

/// Frames larger than this are rejected with
/// [`ErrorKind::FrameTooLarge`] before the payload is read.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 32 * 1024 * 1024;

/// Upper bucket bounds (µs) of the serving latency histogram; the
/// final implicit bucket is unbounded.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 100_000, 500_000, 1_000_000,
];

/// A client → daemon command.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Estimate every road's speed at a slot from crowd observations.
    Estimate {
        /// Slot of day the observations belong to.
        slot_of_day: usize,
        /// Crowdsourced `(road id, speed)` seed observations.
        observations: Vec<(u32, f64)>,
        /// Optional per-request deadline, measured from admission; an
        /// expired request is dropped with
        /// [`ErrorKind::DeadlineExceeded`] instead of wasting a worker.
        deadline_ms: Option<u64>,
        /// Optional road-id filter: when present, the reply's vectors
        /// are aligned to exactly these roads in this order instead of
        /// covering the full graph. The sharded router leans on this
        /// to scatter a request across shard workers; a shard worker
        /// with no filter serves all roads it owns, ascending.
        roads: Option<Vec<u32>>,
    },
    /// Feed one observed day into the online correlation model,
    /// retrain off the serving path, and atomically publish the new
    /// model epoch.
    IngestDay {
        /// Slot-major speed rows (`rows[slot][road]`), NaN = missing.
        rows: Vec<Vec<f64>>,
    },
    /// Fetch the metrics snapshot.
    Stats,
    /// Ask the daemon to stop accepting and drain.
    Shutdown,
    /// Force a model snapshot to disk right now (requires the daemon
    /// to have been started with a snapshot directory).
    Snapshot,
    /// Many estimate queries in one frame. The whole batch costs one
    /// frame round-trip and one admission-queue slot; the reply
    /// carries one outcome per item in request order, and a failing
    /// item degrades to a typed per-item error instead of sinking its
    /// neighbours.
    EstimateBatch {
        /// The queries, answered in order by [`Response::Batch`].
        items: Vec<BatchItem>,
        /// Optional deadline shared by the whole batch, measured from
        /// admission (like [`Request::Estimate`]'s).
        deadline_ms: Option<u64>,
    },
}

/// One query of a [`Request::EstimateBatch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItem {
    /// Slot of day the observations belong to.
    pub slot_of_day: usize,
    /// Crowdsourced `(road id, speed)` seed observations.
    pub observations: Vec<(u32, f64)>,
    /// Optional road-id filter (see [`Request::Estimate`]).
    pub roads: Option<Vec<u32>>,
}

/// Typed failure classes a daemon can answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Admission queue full — retry later (backpressure, not failure).
    Overloaded,
    /// The request deadline expired before a worker picked it up.
    DeadlineExceeded,
    /// An estimate request carried no observations.
    NoObservations,
    /// An ingested day's dimensions disagree with the model.
    ShapeMismatch,
    /// The frame's JSON payload was unparseable or missing fields.
    BadRequest,
    /// The `"cmd"` discriminator named no known command.
    UnknownCommand,
    /// The frame header carried an unsupported protocol version.
    UnsupportedVersion,
    /// The frame length exceeded the daemon's limit.
    FrameTooLarge,
    /// A `SNAPSHOT` command reached a daemon running without a
    /// snapshot directory.
    SnapshotUnavailable,
    /// The connection exceeded its token-bucket rate limit; the
    /// request was refused but the connection survives — retry after
    /// backing off.
    RateLimited,
    /// A sharded router could not reach the shard worker(s) owning the
    /// requested roads; the fleet supervisor restarts dead workers, so
    /// this is retryable.
    ShardUnavailable,
    /// Anything else (training failure, internal channel breakage).
    Internal,
}

impl ErrorKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::NoObservations => "no_observations",
            ErrorKind::ShapeMismatch => "shape_mismatch",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownCommand => "unknown_command",
            ErrorKind::UnsupportedVersion => "unsupported_version",
            ErrorKind::FrameTooLarge => "frame_too_large",
            ErrorKind::SnapshotUnavailable => "snapshot_unavailable",
            ErrorKind::RateLimited => "rate_limited",
            ErrorKind::ShardUnavailable => "shard_unavailable",
            ErrorKind::Internal => "internal",
        }
    }

    fn from_name(name: &str) -> Option<ErrorKind> {
        Some(match name {
            "overloaded" => ErrorKind::Overloaded,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "no_observations" => ErrorKind::NoObservations,
            "shape_mismatch" => ErrorKind::ShapeMismatch,
            "bad_request" => ErrorKind::BadRequest,
            "unknown_command" => ErrorKind::UnknownCommand,
            "unsupported_version" => ErrorKind::UnsupportedVersion,
            "frame_too_large" => ErrorKind::FrameTooLarge,
            "snapshot_unavailable" => ErrorKind::SnapshotUnavailable,
            "rate_limited" => ErrorKind::RateLimited,
            "shard_unavailable" => ErrorKind::ShardUnavailable,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One slot's estimate as served over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateReply {
    /// Model epoch that served the request (see `STATS` gauge).
    pub epoch: u64,
    /// Estimated speed (km/h) per road.
    pub speeds: Vec<f64>,
    /// Step-1 posterior up-probability per road (empty for baselines).
    pub p_up: Vec<f64>,
    /// Hard trend decisions per road (empty for baselines).
    pub trends: Vec<bool>,
    /// Observations skipped for naming non-seed roads.
    pub ignored_observations: u64,
    /// Road ids the router could not serve because their owning shard
    /// was down; their positions in the vectors above hold NaN speeds,
    /// NaN `p_up`, and `false` trends. Empty (and absent on the wire)
    /// outside degraded sharded serving.
    pub unavailable: Vec<u32>,
}

/// Per-command counters as reported by `STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommandStats {
    /// Frames decoded into this command.
    pub received: u64,
    /// Completed successfully.
    pub ok: u64,
    /// Completed with a typed error.
    pub errors: u64,
}

/// The `STATS` response body.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReply {
    /// Current model epoch (starts at 1, bumps on every publish).
    pub epoch: u64,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Days the online correlation model has ingested (bootstrap
    /// window included).
    pub days_ingested: u64,
    /// Counters per command, in wire order
    /// (`estimate`, `ingest_day`, `stats`, `shutdown`).
    pub commands: Vec<(String, CommandStats)>,
    /// Estimate requests refused because the admission queue was full.
    pub rejected_overload: u64,
    /// Estimate requests dropped because their deadline expired.
    pub rejected_deadline: u64,
    /// Connections refused at the acceptor (connection cap hit, or a
    /// handler thread failed to spawn).
    pub rejected_connections: u64,
    /// Serving-worker panics isolated to a single request; the worker
    /// pool keeps its size and the daemon keeps answering.
    pub worker_panics: u64,
    /// Retrains that failed (panic or training error) after the shape
    /// check; each left the previous model epoch serving.
    pub retrain_failures: u64,
    /// Successful `INGEST_DAY` retrains by path taken (`incremental`,
    /// `full_cold`, `full_reanchor`).
    pub retrains: Vec<(String, u64)>,
    /// Cumulative correlation edges updated, added, or removed by
    /// incremental retrains.
    pub retrain_edges_changed: u64,
    /// Cumulative HLM design rows folded by incremental retrains.
    pub retrain_rows_folded: u64,
    /// Cumulative wall-clock milliseconds spent inside incremental
    /// retrains (all patch stages plus the coefficient re-solve).
    pub retrain_incremental_ms: u64,
    /// Snapshot files written (initial train, post-ingest publishes,
    /// and explicit `SNAPSHOT` commands).
    pub snapshot_writes: u64,
    /// Snapshot writes that failed; the daemon kept serving.
    pub snapshot_write_failures: u64,
    /// 1 when this process resumed from a snapshot instead of training
    /// at startup, else 0.
    pub snapshot_resumed: u64,
    /// Snapshot files refused during the resume scan, by typed reason
    /// (`io`, `bad_magic`, `bad_version`, `truncated`, `bad_checksum`,
    /// `config_mismatch`, `decode`).
    pub snapshot_rejects: Vec<(String, u64)>,
    /// Cumulative non-seed observations skipped across all served
    /// estimates.
    pub ignored_observations: u64,
    /// Serving latency histogram: counts per bucket of
    /// [`LATENCY_BUCKET_BOUNDS_US`] plus a final overflow bucket.
    pub latency_counts: Vec<u64>,
    /// Requests refused by the per-connection token bucket
    /// (`--rate-limit-rps`).
    pub rate_limited_requests: u64,
    /// Client connections currently open (the event loop's gauge;
    /// idle keep-alives count, refused connections never do).
    pub open_connections: u64,
    /// Requests decoded from JSON (version-1) frames.
    pub requests_json: u64,
    /// Requests decoded from binary (version-2) frames.
    pub requests_binary: u64,
    /// Set when this process is a shard worker: which slice of the
    /// plan it serves. `None` for unsharded daemons and routers.
    pub shard: Option<ShardIdentity>,
    /// Per-shard health rows, present only in a router's fleet-wide
    /// `STATS` merge (empty and absent on the wire otherwise).
    pub shards: Vec<ShardHealth>,
    /// Latest drift-signal value (0 when drift detection is off).
    pub drift_signal: f64,
    /// Drift-triggered full rebootstraps over this model lineage
    /// (survives restarts via the snapshot).
    pub drift_triggers: u64,
    /// Model epoch the latest rebootstrap published (0 = never).
    pub drift_last_rebootstrap_epoch: u64,
    /// |old ∩ new| of the latest drift seed re-selection.
    pub drift_seed_overlap: u64,
}

/// A shard worker's identity as reported in its own `STATS` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIdentity {
    /// This worker's shard index in the plan.
    pub index: u32,
    /// Total shards in the plan.
    pub count: u32,
    /// Roads this shard owns (serves by default).
    pub owned_roads: u64,
    /// FNV-1a fingerprint of the `ShardPlan`; the router cross-checks
    /// it against its own plan to detect mixed fleets. Hex-encoded on
    /// the wire (the JSON codec's f64 numbers cannot carry 64 bits).
    pub fingerprint: u64,
}

/// One shard's row in the router's fleet-wide `STATS` breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index in the plan.
    pub shard: u32,
    /// Whether the router could reach the worker for this snapshot.
    pub up: bool,
    /// Whether the worker's plan fingerprint matched the router's
    /// (always `false` while the worker is unreachable).
    pub plan_ok: bool,
    /// The worker's current model epoch (0 while unreachable).
    pub epoch: u64,
    /// Days the worker has ingested (0 while unreachable).
    pub days_ingested: u64,
    /// Restarts recorded by the fleet supervisor (0 when the router
    /// fronts externally-managed workers).
    pub restarts: u64,
    /// Roads the plan assigns to this shard.
    pub owned_roads: u64,
}

/// A daemon → client reply.
// `Stats` dwarfs the other variants, but it is a rare control-plane
// reply — boxing it would buy nothing on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful estimate.
    Estimate(EstimateReply),
    /// Day ingested and a new model epoch published.
    Ingested {
        /// Epoch of the freshly published model.
        epoch: u64,
        /// Total days the online model has now ingested.
        days_ingested: u64,
    },
    /// Metrics snapshot.
    Stats(StatsReply),
    /// A model snapshot was forced to disk.
    Snapshotted {
        /// Epoch the written file captured.
        epoch: u64,
        /// Path of the written snapshot file.
        path: String,
    },
    /// Shutdown acknowledged; the daemon is draining.
    ShuttingDown,
    /// Typed failure.
    Error {
        /// Failure class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// Per-item outcomes of an `ESTIMATE_BATCH`, in request order.
    Batch(Vec<BatchOutcome>),
}

/// One item's outcome inside a [`Response::Batch`].
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOutcome {
    /// The item was served.
    Estimate(EstimateReply),
    /// The item failed with a typed error; the other items of the
    /// batch are unaffected.
    Error {
        /// Failure class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

fn obs_to_json(observations: &[(u32, f64)]) -> Json {
    Json::Arr(
        observations
            .iter()
            .map(|&(road, speed)| Json::Arr(vec![Json::Num(road as f64), nan_to_json(speed)]))
            .collect(),
    )
}

fn f64s_to_json(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| nan_to_json(v)).collect())
}

fn u64s_to_json(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Num(v as f64)).collect())
}

fn json_to_f64s(v: &Json, what: &str) -> Result<Vec<f64>, String> {
    v.as_arr()
        .ok_or_else(|| format!("{what}: expected array"))?
        .iter()
        .map(|item| num_or_nan(item).ok_or_else(|| format!("{what}: expected number")))
        .collect()
}

fn json_to_u64s(v: &Json, what: &str) -> Result<Vec<u64>, String> {
    v.as_arr()
        .ok_or_else(|| format!("{what}: expected array"))?
        .iter()
        .map(|item| {
            item.as_u64()
                .ok_or_else(|| format!("{what}: expected integer"))
        })
        .collect()
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

/// The JSON body of an estimate reply, shared by the top-level
/// `Response::Estimate` object and each served item of a batch reply.
fn estimate_reply_fields(reply: &EstimateReply) -> Vec<(String, Json)> {
    let mut fields = vec![
        ("epoch".into(), Json::Num(reply.epoch as f64)),
        ("speeds".into(), f64s_to_json(&reply.speeds)),
        ("p_up".into(), f64s_to_json(&reply.p_up)),
        (
            "trends".into(),
            Json::Arr(reply.trends.iter().map(|&t| Json::Bool(t)).collect()),
        ),
        (
            "ignored".into(),
            Json::Num(reply.ignored_observations as f64),
        ),
    ];
    if !reply.unavailable.is_empty() {
        fields.push((
            "unavailable".into(),
            Json::Arr(
                reply
                    .unavailable
                    .iter()
                    .map(|&r| Json::Num(r as f64))
                    .collect(),
            ),
        ));
    }
    fields
}

fn json_to_estimate_reply(json: &Json) -> Result<EstimateReply, String> {
    Ok(EstimateReply {
        epoch: field(json, "epoch")?.as_u64().ok_or("epoch: bad integer")?,
        speeds: json_to_f64s(field(json, "speeds")?, "speeds")?,
        p_up: json_to_f64s(field(json, "p_up")?, "p_up")?,
        trends: field(json, "trends")?
            .as_arr()
            .ok_or("trends: expected array")?
            .iter()
            .map(|v| v.as_bool().ok_or("trends: expected bool".to_string()))
            .collect::<Result<Vec<_>, _>>()?,
        ignored_observations: field(json, "ignored")?
            .as_u64()
            .ok_or("ignored: bad integer")?,
        unavailable: match json.get("unavailable") {
            None | Some(Json::Null) => Vec::new(),
            Some(v) => json_to_u64s(v, "unavailable")?
                .into_iter()
                .map(|r| u32::try_from(r).map_err(|_| "unavailable: bad road id".to_string()))
                .collect::<Result<Vec<_>, _>>()?,
        },
    })
}

/// A batch item outcome reuses the top-level `"ok"`/`"err"` shapes so
/// the two reply forms cannot drift apart.
fn batch_outcome_to_json(outcome: &BatchOutcome) -> Json {
    match outcome {
        BatchOutcome::Estimate(reply) => {
            let mut fields = vec![("ok".into(), Json::Str("estimate".into()))];
            fields.extend(estimate_reply_fields(reply));
            Json::Obj(fields)
        }
        BatchOutcome::Error { kind, message } => Json::Obj(vec![
            ("err".into(), Json::Str(kind.name().into())),
            ("message".into(), Json::Str(message.clone())),
        ]),
    }
}

fn json_to_batch_outcome(json: &Json) -> Result<BatchOutcome, String> {
    if let Some(err) = json.get("err") {
        let name = err.as_str().ok_or("items.err: expected string")?;
        let kind =
            ErrorKind::from_name(name).ok_or_else(|| format!("unknown error kind {name:?}"))?;
        let message = json
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        return Ok(BatchOutcome::Error { kind, message });
    }
    match json.get("ok").and_then(Json::as_str) {
        Some("estimate") => Ok(BatchOutcome::Estimate(json_to_estimate_reply(json)?)),
        _ => Err("items: expected an estimate or error object".into()),
    }
}

impl Request {
    /// Encodes to a JSON payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let json = match self {
            Request::Estimate {
                slot_of_day,
                observations,
                deadline_ms,
                roads,
            } => {
                let mut fields = vec![
                    ("cmd".into(), Json::Str("estimate".into())),
                    ("slot".into(), Json::Num(*slot_of_day as f64)),
                    ("obs".into(), obs_to_json(observations)),
                    (
                        "deadline_ms".into(),
                        deadline_ms.map_or(Json::Null, |d| Json::Num(d as f64)),
                    ),
                ];
                // Absent when None so pre-shard peers see an unchanged
                // frame shape.
                if let Some(roads) = roads {
                    fields.push((
                        "roads".into(),
                        Json::Arr(roads.iter().map(|&r| Json::Num(r as f64)).collect()),
                    ));
                }
                Json::Obj(fields)
            }
            Request::IngestDay { rows } => Json::Obj(vec![
                ("cmd".into(), Json::Str("ingest_day".into())),
                (
                    "rows".into(),
                    Json::Arr(rows.iter().map(|row| f64s_to_json(row)).collect()),
                ),
            ]),
            Request::Stats => Json::Obj(vec![("cmd".into(), Json::Str("stats".into()))]),
            Request::Shutdown => Json::Obj(vec![("cmd".into(), Json::Str("shutdown".into()))]),
            Request::Snapshot => Json::Obj(vec![("cmd".into(), Json::Str("snapshot".into()))]),
            Request::EstimateBatch { items, deadline_ms } => Json::Obj(vec![
                ("cmd".into(), Json::Str("estimate_batch".into())),
                (
                    "deadline_ms".into(),
                    deadline_ms.map_or(Json::Null, |d| Json::Num(d as f64)),
                ),
                (
                    "items".into(),
                    Json::Arr(
                        items
                            .iter()
                            .map(|item| {
                                let mut fields = vec![
                                    ("slot".into(), Json::Num(item.slot_of_day as f64)),
                                    ("obs".into(), obs_to_json(&item.observations)),
                                ];
                                if let Some(roads) = &item.roads {
                                    fields.push((
                                        "roads".into(),
                                        Json::Arr(
                                            roads.iter().map(|&r| Json::Num(r as f64)).collect(),
                                        ),
                                    ));
                                }
                                Json::Obj(fields)
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        json.encode().into_bytes()
    }

    /// Decodes a JSON payload. `Err((kind, message))` distinguishes an
    /// unknown command from a malformed body so the daemon can answer
    /// with the right typed error — in both cases the connection
    /// survives.
    pub fn decode(payload: &[u8]) -> Result<Request, (ErrorKind, String)> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| (ErrorKind::BadRequest, "payload is not utf-8".to_string()))?;
        let json =
            Json::parse(text).map_err(|e| (ErrorKind::BadRequest, format!("bad json: {e}")))?;
        let cmd = json
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| (ErrorKind::BadRequest, "missing \"cmd\"".to_string()))?;
        let bad = |m: String| (ErrorKind::BadRequest, m);
        let slot_of = |v: &Json| -> Result<usize, String> {
            field(v, "slot")
                .and_then(|s| s.as_u64().ok_or_else(|| "slot: expected integer".into()))
                .map(|s| s as usize)
        };
        let obs_of = |v: &Json| -> Result<Vec<(u32, f64)>, String> {
            field(v, "obs").and_then(|v| {
                v.as_arr()
                    .ok_or_else(|| "obs: expected array".to_string())?
                    .iter()
                    .map(|pair| {
                        let pair = pair
                            .as_arr()
                            .ok_or_else(|| "obs: expected pairs".to_string())?;
                        let (road, speed) = match pair {
                            [r, s] => (r, s),
                            _ => return Err("obs: expected [road, speed]".to_string()),
                        };
                        let road = road
                            .as_u64()
                            .filter(|&r| r <= u32::MAX as u64)
                            .ok_or_else(|| "obs: bad road id".to_string())?;
                        let speed =
                            num_or_nan(speed).ok_or_else(|| "obs: bad speed".to_string())?;
                        Ok((road as u32, speed))
                    })
                    .collect::<Result<Vec<_>, String>>()
            })
        };
        let roads_of = |v: &Json| -> Result<Option<Vec<u32>>, String> {
            match v.get("roads") {
                None | Some(Json::Null) => Ok(None),
                Some(v) => Ok(Some(
                    v.as_arr()
                        .ok_or_else(|| "roads: expected array".to_string())?
                        .iter()
                        .map(|r| {
                            r.as_u64()
                                .filter(|&r| r <= u32::MAX as u64)
                                .map(|r| r as u32)
                                .ok_or_else(|| "roads: bad road id".to_string())
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                )),
            }
        };
        let deadline_of = |v: &Json| -> Result<Option<u64>, String> {
            match v.get("deadline_ms") {
                None | Some(Json::Null) => Ok(None),
                Some(v) => {
                    Ok(Some(v.as_u64().ok_or_else(|| {
                        "deadline_ms: expected integer".to_string()
                    })?))
                }
            }
        };
        match cmd {
            "estimate" => Ok(Request::Estimate {
                slot_of_day: slot_of(&json).map_err(bad)?,
                observations: obs_of(&json).map_err(bad)?,
                deadline_ms: deadline_of(&json).map_err(bad)?,
                roads: roads_of(&json).map_err(bad)?,
            }),
            "estimate_batch" => {
                let items = field(&json, "items")
                    .and_then(|v| {
                        v.as_arr()
                            .ok_or_else(|| "items: expected array".to_string())?
                            .iter()
                            .map(|item| {
                                Ok(BatchItem {
                                    slot_of_day: slot_of(item)?,
                                    observations: obs_of(item)?,
                                    roads: roads_of(item)?,
                                })
                            })
                            .collect::<Result<Vec<_>, String>>()
                    })
                    .map_err(bad)?;
                Ok(Request::EstimateBatch {
                    items,
                    deadline_ms: deadline_of(&json).map_err(bad)?,
                })
            }
            "ingest_day" => {
                let rows = field(&json, "rows")
                    .and_then(|v| {
                        v.as_arr()
                            .ok_or_else(|| "rows: expected array".to_string())?
                            .iter()
                            .map(|row| json_to_f64s(row, "rows"))
                            .collect::<Result<Vec<_>, String>>()
                    })
                    .map_err(bad)?;
                Ok(Request::IngestDay { rows })
            }
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "snapshot" => Ok(Request::Snapshot),
            other => Err((
                ErrorKind::UnknownCommand,
                format!("unknown command {other:?}"),
            )),
        }
    }
}

impl Response {
    /// Encodes to a JSON payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let json = match self {
            Response::Estimate(reply) => {
                let mut fields = vec![("ok".into(), Json::Str("estimate".into()))];
                fields.extend(estimate_reply_fields(reply));
                Json::Obj(fields)
            }
            Response::Batch(items) => Json::Obj(vec![
                ("ok".into(), Json::Str("estimate_batch".into())),
                (
                    "items".into(),
                    Json::Arr(items.iter().map(batch_outcome_to_json).collect()),
                ),
            ]),
            Response::Ingested {
                epoch,
                days_ingested,
            } => Json::Obj(vec![
                ("ok".into(), Json::Str("ingest_day".into())),
                ("epoch".into(), Json::Num(*epoch as f64)),
                ("days".into(), Json::Num(*days_ingested as f64)),
            ]),
            Response::Stats(stats) => Json::Obj({
                let mut fields = vec![
                    ("ok".into(), Json::Str("stats".into())),
                    ("epoch".into(), Json::Num(stats.epoch as f64)),
                    ("uptime_ms".into(), Json::Num(stats.uptime_ms as f64)),
                    ("days".into(), Json::Num(stats.days_ingested as f64)),
                    (
                        "commands".into(),
                        Json::Obj(
                            stats
                                .commands
                                .iter()
                                .map(|(name, c)| {
                                    (
                                        name.clone(),
                                        Json::Obj(vec![
                                            ("received".into(), Json::Num(c.received as f64)),
                                            ("ok".into(), Json::Num(c.ok as f64)),
                                            ("errors".into(), Json::Num(c.errors as f64)),
                                        ]),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "rejected_overload".into(),
                        Json::Num(stats.rejected_overload as f64),
                    ),
                    (
                        "rejected_deadline".into(),
                        Json::Num(stats.rejected_deadline as f64),
                    ),
                    (
                        "rejected_connections".into(),
                        Json::Num(stats.rejected_connections as f64),
                    ),
                    (
                        "worker_panics".into(),
                        Json::Num(stats.worker_panics as f64),
                    ),
                    (
                        "retrain_failures".into(),
                        Json::Num(stats.retrain_failures as f64),
                    ),
                    (
                        "retrains".into(),
                        Json::Obj(
                            stats
                                .retrains
                                .iter()
                                .map(|(name, count)| (name.clone(), Json::Num(*count as f64)))
                                .collect(),
                        ),
                    ),
                    (
                        "retrain_edges_changed".into(),
                        Json::Num(stats.retrain_edges_changed as f64),
                    ),
                    (
                        "retrain_rows_folded".into(),
                        Json::Num(stats.retrain_rows_folded as f64),
                    ),
                    (
                        "retrain_incremental_ms".into(),
                        Json::Num(stats.retrain_incremental_ms as f64),
                    ),
                    (
                        "snapshot_writes".into(),
                        Json::Num(stats.snapshot_writes as f64),
                    ),
                    (
                        "snapshot_write_failures".into(),
                        Json::Num(stats.snapshot_write_failures as f64),
                    ),
                    (
                        "snapshot_resumed".into(),
                        Json::Num(stats.snapshot_resumed as f64),
                    ),
                    (
                        "snapshot_rejects".into(),
                        Json::Obj(
                            stats
                                .snapshot_rejects
                                .iter()
                                .map(|(name, count)| (name.clone(), Json::Num(*count as f64)))
                                .collect(),
                        ),
                    ),
                    (
                        "ignored_observations".into(),
                        Json::Num(stats.ignored_observations as f64),
                    ),
                    (
                        "latency_bounds_us".into(),
                        u64s_to_json(&LATENCY_BUCKET_BOUNDS_US),
                    ),
                    ("latency_counts".into(), u64s_to_json(&stats.latency_counts)),
                    (
                        "rate_limited".into(),
                        Json::Num(stats.rate_limited_requests as f64),
                    ),
                    (
                        "open_connections".into(),
                        Json::Num(stats.open_connections as f64),
                    ),
                    (
                        "requests_json".into(),
                        Json::Num(stats.requests_json as f64),
                    ),
                    (
                        "requests_binary".into(),
                        Json::Num(stats.requests_binary as f64),
                    ),
                    ("drift_signal".into(), Json::Num(stats.drift_signal)),
                    (
                        "drift_triggers".into(),
                        Json::Num(stats.drift_triggers as f64),
                    ),
                    (
                        "drift_last_rebootstrap_epoch".into(),
                        Json::Num(stats.drift_last_rebootstrap_epoch as f64),
                    ),
                    (
                        "drift_seed_overlap".into(),
                        Json::Num(stats.drift_seed_overlap as f64),
                    ),
                ];
                if let Some(shard) = &stats.shard {
                    fields.push((
                        "shard".into(),
                        Json::Obj(vec![
                            ("index".into(), Json::Num(shard.index as f64)),
                            ("count".into(), Json::Num(shard.count as f64)),
                            ("owned_roads".into(), Json::Num(shard.owned_roads as f64)),
                            // Hex: the codec's f64 numbers lose bits
                            // past 2^53.
                            (
                                "fingerprint".into(),
                                Json::Str(format!("{:016x}", shard.fingerprint)),
                            ),
                        ]),
                    ));
                }
                if !stats.shards.is_empty() {
                    fields.push((
                        "shards".into(),
                        Json::Arr(
                            stats
                                .shards
                                .iter()
                                .map(|h| {
                                    Json::Obj(vec![
                                        ("shard".into(), Json::Num(h.shard as f64)),
                                        ("up".into(), Json::Bool(h.up)),
                                        ("plan_ok".into(), Json::Bool(h.plan_ok)),
                                        ("epoch".into(), Json::Num(h.epoch as f64)),
                                        ("days".into(), Json::Num(h.days_ingested as f64)),
                                        ("restarts".into(), Json::Num(h.restarts as f64)),
                                        ("owned_roads".into(), Json::Num(h.owned_roads as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                }
                fields
            }),
            Response::Snapshotted { epoch, path } => Json::Obj(vec![
                ("ok".into(), Json::Str("snapshot".into())),
                ("epoch".into(), Json::Num(*epoch as f64)),
                ("path".into(), Json::Str(path.clone())),
            ]),
            Response::ShuttingDown => Json::Obj(vec![("ok".into(), Json::Str("shutdown".into()))]),
            Response::Error { kind, message } => Json::Obj(vec![
                ("err".into(), Json::Str(kind.name().into())),
                ("message".into(), Json::Str(message.clone())),
            ]),
        };
        json.encode().into_bytes()
    }

    /// Decodes a JSON payload.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "payload is not utf-8".to_string())?;
        let json = Json::parse(text).map_err(|e| format!("bad json: {e}"))?;
        if let Some(err) = json.get("err") {
            let name = err.as_str().ok_or("err: expected string")?;
            let kind =
                ErrorKind::from_name(name).ok_or_else(|| format!("unknown error kind {name:?}"))?;
            let message = json
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            return Ok(Response::Error { kind, message });
        }
        let ok = json
            .get("ok")
            .and_then(Json::as_str)
            .ok_or("missing \"ok\"/\"err\"")?;
        match ok {
            "estimate" => Ok(Response::Estimate(json_to_estimate_reply(&json)?)),
            "estimate_batch" => Ok(Response::Batch(
                field(&json, "items")?
                    .as_arr()
                    .ok_or("items: expected array")?
                    .iter()
                    .map(json_to_batch_outcome)
                    .collect::<Result<Vec<_>, String>>()?,
            )),
            "ingest_day" => Ok(Response::Ingested {
                epoch: field(&json, "epoch")?
                    .as_u64()
                    .ok_or("epoch: bad integer")?,
                days_ingested: field(&json, "days")?.as_u64().ok_or("days: bad integer")?,
            }),
            "stats" => {
                let commands = match field(&json, "commands")? {
                    Json::Obj(fields) => fields
                        .iter()
                        .map(|(name, c)| {
                            Ok((
                                name.clone(),
                                CommandStats {
                                    received: field(c, "received")?
                                        .as_u64()
                                        .ok_or("received: bad integer")?,
                                    ok: field(c, "ok")?.as_u64().ok_or("ok: bad integer")?,
                                    errors: field(c, "errors")?
                                        .as_u64()
                                        .ok_or("errors: bad integer")?,
                                },
                            ))
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    _ => return Err("commands: expected object".into()),
                };
                Ok(Response::Stats(StatsReply {
                    epoch: field(&json, "epoch")?
                        .as_u64()
                        .ok_or("epoch: bad integer")?,
                    uptime_ms: field(&json, "uptime_ms")?
                        .as_u64()
                        .ok_or("uptime_ms: bad integer")?,
                    days_ingested: field(&json, "days")?.as_u64().ok_or("days: bad integer")?,
                    commands,
                    rejected_overload: field(&json, "rejected_overload")?
                        .as_u64()
                        .ok_or("rejected_overload: bad integer")?,
                    rejected_deadline: field(&json, "rejected_deadline")?
                        .as_u64()
                        .ok_or("rejected_deadline: bad integer")?,
                    rejected_connections: field(&json, "rejected_connections")?
                        .as_u64()
                        .ok_or("rejected_connections: bad integer")?,
                    worker_panics: field(&json, "worker_panics")?
                        .as_u64()
                        .ok_or("worker_panics: bad integer")?,
                    retrain_failures: field(&json, "retrain_failures")?
                        .as_u64()
                        .ok_or("retrain_failures: bad integer")?,
                    retrains: match field(&json, "retrains")? {
                        Json::Obj(fields) => fields
                            .iter()
                            .map(|(name, c)| {
                                Ok((name.clone(), c.as_u64().ok_or("retrains: bad integer")?))
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                        _ => return Err("retrains: expected object".into()),
                    },
                    retrain_edges_changed: field(&json, "retrain_edges_changed")?
                        .as_u64()
                        .ok_or("retrain_edges_changed: bad integer")?,
                    retrain_rows_folded: field(&json, "retrain_rows_folded")?
                        .as_u64()
                        .ok_or("retrain_rows_folded: bad integer")?,
                    retrain_incremental_ms: field(&json, "retrain_incremental_ms")?
                        .as_u64()
                        .ok_or("retrain_incremental_ms: bad integer")?,
                    snapshot_writes: field(&json, "snapshot_writes")?
                        .as_u64()
                        .ok_or("snapshot_writes: bad integer")?,
                    snapshot_write_failures: field(&json, "snapshot_write_failures")?
                        .as_u64()
                        .ok_or("snapshot_write_failures: bad integer")?,
                    snapshot_resumed: field(&json, "snapshot_resumed")?
                        .as_u64()
                        .ok_or("snapshot_resumed: bad integer")?,
                    snapshot_rejects: match field(&json, "snapshot_rejects")? {
                        Json::Obj(fields) => fields
                            .iter()
                            .map(|(name, c)| {
                                Ok((
                                    name.clone(),
                                    c.as_u64().ok_or("snapshot_rejects: bad integer")?,
                                ))
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                        _ => return Err("snapshot_rejects: expected object".into()),
                    },
                    ignored_observations: field(&json, "ignored_observations")?
                        .as_u64()
                        .ok_or("ignored_observations: bad integer")?,
                    latency_counts: json_to_u64s(
                        field(&json, "latency_counts")?,
                        "latency_counts",
                    )?,
                    rate_limited_requests: match json.get("rate_limited") {
                        None | Some(Json::Null) => 0,
                        Some(v) => v.as_u64().ok_or("rate_limited: bad integer")?,
                    },
                    // The connection/codec family postdates the shard
                    // fields; frames from older builds simply omit them.
                    open_connections: match json.get("open_connections") {
                        None | Some(Json::Null) => 0,
                        Some(v) => v.as_u64().ok_or("open_connections: bad integer")?,
                    },
                    requests_json: match json.get("requests_json") {
                        None | Some(Json::Null) => 0,
                        Some(v) => v.as_u64().ok_or("requests_json: bad integer")?,
                    },
                    requests_binary: match json.get("requests_binary") {
                        None | Some(Json::Null) => 0,
                        Some(v) => v.as_u64().ok_or("requests_binary: bad integer")?,
                    },
                    shard: match json.get("shard") {
                        None | Some(Json::Null) => None,
                        Some(s) => Some(ShardIdentity {
                            index: field(s, "index")?
                                .as_u64()
                                .filter(|&v| v <= u32::MAX as u64)
                                .ok_or("shard.index: bad integer")?
                                as u32,
                            count: field(s, "count")?
                                .as_u64()
                                .filter(|&v| v <= u32::MAX as u64)
                                .ok_or("shard.count: bad integer")?
                                as u32,
                            owned_roads: field(s, "owned_roads")?
                                .as_u64()
                                .ok_or("shard.owned_roads: bad integer")?,
                            fingerprint: field(s, "fingerprint")?
                                .as_str()
                                .and_then(|s| u64::from_str_radix(s, 16).ok())
                                .ok_or("shard.fingerprint: bad hex")?,
                        }),
                    },
                    shards: match json.get("shards") {
                        None | Some(Json::Null) => Vec::new(),
                        Some(v) => v
                            .as_arr()
                            .ok_or("shards: expected array")?
                            .iter()
                            .map(|h| {
                                Ok(ShardHealth {
                                    shard: field(h, "shard")?
                                        .as_u64()
                                        .filter(|&v| v <= u32::MAX as u64)
                                        .ok_or("shards.shard: bad integer")?
                                        as u32,
                                    up: field(h, "up")?.as_bool().ok_or("shards.up: bad bool")?,
                                    plan_ok: field(h, "plan_ok")?
                                        .as_bool()
                                        .ok_or("shards.plan_ok: bad bool")?,
                                    epoch: field(h, "epoch")?
                                        .as_u64()
                                        .ok_or("shards.epoch: bad integer")?,
                                    days_ingested: field(h, "days")?
                                        .as_u64()
                                        .ok_or("shards.days: bad integer")?,
                                    restarts: field(h, "restarts")?
                                        .as_u64()
                                        .ok_or("shards.restarts: bad integer")?,
                                    owned_roads: field(h, "owned_roads")?
                                        .as_u64()
                                        .ok_or("shards.owned_roads: bad integer")?,
                                })
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                    },
                    // The drift family postdates the shard fields;
                    // frames from older builds simply omit them.
                    drift_signal: match json.get("drift_signal") {
                        None | Some(Json::Null) => 0.0,
                        Some(v) => v.as_f64().ok_or("drift_signal: bad number")?,
                    },
                    drift_triggers: match json.get("drift_triggers") {
                        None | Some(Json::Null) => 0,
                        Some(v) => v.as_u64().ok_or("drift_triggers: bad integer")?,
                    },
                    drift_last_rebootstrap_epoch: match json.get("drift_last_rebootstrap_epoch") {
                        None | Some(Json::Null) => 0,
                        Some(v) => v
                            .as_u64()
                            .ok_or("drift_last_rebootstrap_epoch: bad integer")?,
                    },
                    drift_seed_overlap: match json.get("drift_seed_overlap") {
                        None | Some(Json::Null) => 0,
                        Some(v) => v.as_u64().ok_or("drift_seed_overlap: bad integer")?,
                    },
                }))
            }
            "snapshot" => Ok(Response::Snapshotted {
                epoch: field(&json, "epoch")?
                    .as_u64()
                    .ok_or("epoch: bad integer")?,
                path: field(&json, "path")?
                    .as_str()
                    .ok_or("path: expected string")?
                    .to_string(),
            }),
            "shutdown" => Ok(Response::ShuttingDown),
            other => Err(format!("unknown response {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------
// Binary codec (version-2 frames)
// ---------------------------------------------------------------------
//
// Layout: a leading tag byte, then the variant's fields in declaration
// order. Integers are little-endian fixed width, `f64`s travel as raw
// IEEE-754 bits (bit-identity is structural, not a formatting
// property), strings and vectors carry a `u32` element count, and an
// `Option` is one presence byte followed by the value when present.
// Every element count is validated against the remaining payload
// before allocation, so a hostile count fails as a decode error
// instead of an allocation.

const BREQ_ESTIMATE: u8 = 1;
const BREQ_INGEST_DAY: u8 = 2;
const BREQ_STATS: u8 = 3;
const BREQ_SHUTDOWN: u8 = 4;
const BREQ_SNAPSHOT: u8 = 5;
const BREQ_ESTIMATE_BATCH: u8 = 6;

const BRESP_ESTIMATE: u8 = 1;
const BRESP_INGESTED: u8 = 2;
const BRESP_STATS: u8 = 3;
const BRESP_SNAPSHOTTED: u8 = 4;
const BRESP_SHUTTING_DOWN: u8 = 5;
const BRESP_ERROR: u8 = 6;
const BRESP_BATCH: u8 = 7;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => buf.push(0),
        Some(v) => {
            buf.push(1);
            put_u64(buf, v);
        }
    }
}

fn put_u32s(buf: &mut Vec<u8>, v: &[u32]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        put_u32(buf, x);
    }
}

fn put_f64s(buf: &mut Vec<u8>, v: &[f64]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        put_f64(buf, x);
    }
}

fn put_u64s(buf: &mut Vec<u8>, v: &[u64]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        put_u64(buf, x);
    }
}

fn put_bools(buf: &mut Vec<u8>, v: &[bool]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        put_bool(buf, x);
    }
}

fn put_opt_u32s(buf: &mut Vec<u8>, v: Option<&[u32]>) {
    match v {
        None => buf.push(0),
        Some(v) => {
            buf.push(1);
            put_u32s(buf, v);
        }
    }
}

fn put_obs(buf: &mut Vec<u8>, obs: &[(u32, f64)]) {
    put_u32(buf, obs.len() as u32);
    for &(road, speed) in obs {
        put_u32(buf, road);
        put_f64(buf, speed);
    }
}

fn put_named_u64s(buf: &mut Vec<u8>, v: &[(String, u64)]) {
    put_u32(buf, v.len() as u32);
    for (name, count) in v {
        put_str(buf, name);
        put_u64(buf, *count);
    }
}

/// Bounds-checked reader over a binary payload.
struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    fn new(buf: &'a [u8]) -> BinReader<'a> {
        BinReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err("payload truncated".to_string());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("bad bool byte {b}")),
        }
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.len(1)?;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_string)
            .map_err(|_| "string is not utf-8".to_string())
    }

    /// Reads an element count, refusing counts that could not possibly
    /// fit in the remaining bytes at `min_elem_size` bytes each.
    fn len(&mut self, min_elem_size: usize) -> Result<usize, String> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_size) > self.buf.len() - self.pos {
            return Err("payload truncated".to_string());
        }
        Ok(n)
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    fn u32s(&mut self) -> Result<Vec<u32>, String> {
        let n = self.len(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    fn f64s(&mut self) -> Result<Vec<f64>, String> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn u64s(&mut self) -> Result<Vec<u64>, String> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    fn bools(&mut self) -> Result<Vec<bool>, String> {
        let n = self.len(1)?;
        (0..n).map(|_| self.bool()).collect()
    }

    fn opt_u32s(&mut self) -> Result<Option<Vec<u32>>, String> {
        Ok(if self.bool()? {
            Some(self.u32s()?)
        } else {
            None
        })
    }

    fn obs(&mut self) -> Result<Vec<(u32, f64)>, String> {
        let n = self.len(12)?;
        (0..n).map(|_| Ok((self.u32()?, self.f64()?))).collect()
    }

    fn named_u64s(&mut self) -> Result<Vec<(String, u64)>, String> {
        let n = self.len(12)?;
        (0..n).map(|_| Ok((self.str()?, self.u64()?))).collect()
    }

    fn finish(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err("trailing bytes after payload".to_string())
        }
    }
}

impl Request {
    /// Encodes to the payload codec selected by `codec` (no frame
    /// header).
    pub fn encode_with(&self, codec: Codec) -> Vec<u8> {
        match codec {
            Codec::Json => self.encode(),
            Codec::Binary => self.encode_binary(),
        }
    }

    /// Encodes to a version-2 binary payload (no frame header).
    pub fn encode_binary(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            Request::Estimate {
                slot_of_day,
                observations,
                deadline_ms,
                roads,
            } => {
                buf.push(BREQ_ESTIMATE);
                put_u64(&mut buf, *slot_of_day as u64);
                put_obs(&mut buf, observations);
                put_opt_u64(&mut buf, *deadline_ms);
                put_opt_u32s(&mut buf, roads.as_deref());
            }
            Request::IngestDay { rows } => {
                buf.push(BREQ_INGEST_DAY);
                put_u32(&mut buf, rows.len() as u32);
                for row in rows {
                    put_f64s(&mut buf, row);
                }
            }
            Request::Stats => buf.push(BREQ_STATS),
            Request::Shutdown => buf.push(BREQ_SHUTDOWN),
            Request::Snapshot => buf.push(BREQ_SNAPSHOT),
            Request::EstimateBatch { items, deadline_ms } => {
                buf.push(BREQ_ESTIMATE_BATCH);
                put_opt_u64(&mut buf, *deadline_ms);
                put_u32(&mut buf, items.len() as u32);
                for item in items {
                    put_u64(&mut buf, item.slot_of_day as u64);
                    put_obs(&mut buf, &item.observations);
                    put_opt_u32s(&mut buf, item.roads.as_deref());
                }
            }
        }
        buf
    }

    /// Decodes a version-2 binary payload, with the same typed-error
    /// contract as [`Request::decode`]: an unknown tag is
    /// [`ErrorKind::UnknownCommand`], anything else malformed is
    /// [`ErrorKind::BadRequest`] — in both cases the connection
    /// survives (framing stays intact).
    pub fn decode_binary(payload: &[u8]) -> Result<Request, (ErrorKind, String)> {
        fn body(r: &mut BinReader, tag: u8) -> Result<Option<Request>, String> {
            Ok(Some(match tag {
                BREQ_ESTIMATE => Request::Estimate {
                    slot_of_day: r.u64()? as usize,
                    observations: r.obs()?,
                    deadline_ms: r.opt_u64()?,
                    roads: r.opt_u32s()?,
                },
                BREQ_INGEST_DAY => {
                    let n = r.len(4)?;
                    let mut rows = Vec::with_capacity(n);
                    for _ in 0..n {
                        rows.push(r.f64s()?);
                    }
                    Request::IngestDay { rows }
                }
                BREQ_STATS => Request::Stats,
                BREQ_SHUTDOWN => Request::Shutdown,
                BREQ_SNAPSHOT => Request::Snapshot,
                BREQ_ESTIMATE_BATCH => {
                    let deadline_ms = r.opt_u64()?;
                    let n = r.len(13)?;
                    let mut items = Vec::with_capacity(n);
                    for _ in 0..n {
                        items.push(BatchItem {
                            slot_of_day: r.u64()? as usize,
                            observations: r.obs()?,
                            roads: r.opt_u32s()?,
                        });
                    }
                    Request::EstimateBatch { items, deadline_ms }
                }
                _ => return Ok(None),
            }))
        }
        let bad = |m: String| (ErrorKind::BadRequest, format!("binary: {m}"));
        let mut r = BinReader::new(payload);
        let tag = r.u8().map_err(bad)?;
        match body(&mut r, tag).map_err(bad)? {
            Some(request) => {
                r.finish().map_err(bad)?;
                Ok(request)
            }
            None => Err((
                ErrorKind::UnknownCommand,
                format!("unknown binary command tag {tag}"),
            )),
        }
    }
}

fn put_estimate_reply(buf: &mut Vec<u8>, reply: &EstimateReply) {
    put_u64(buf, reply.epoch);
    put_f64s(buf, &reply.speeds);
    put_f64s(buf, &reply.p_up);
    put_bools(buf, &reply.trends);
    put_u64(buf, reply.ignored_observations);
    put_u32s(buf, &reply.unavailable);
}

fn read_estimate_reply(r: &mut BinReader) -> Result<EstimateReply, String> {
    Ok(EstimateReply {
        epoch: r.u64()?,
        speeds: r.f64s()?,
        p_up: r.f64s()?,
        trends: r.bools()?,
        ignored_observations: r.u64()?,
        unavailable: r.u32s()?,
    })
}

fn put_error(buf: &mut Vec<u8>, kind: ErrorKind, message: &str) {
    put_str(buf, kind.name());
    put_str(buf, message);
}

fn read_error(r: &mut BinReader) -> Result<(ErrorKind, String), String> {
    let name = r.str()?;
    let kind = ErrorKind::from_name(&name).ok_or_else(|| format!("unknown error kind {name:?}"))?;
    Ok((kind, r.str()?))
}

fn put_stats(buf: &mut Vec<u8>, stats: &StatsReply) {
    put_u64(buf, stats.epoch);
    put_u64(buf, stats.uptime_ms);
    put_u64(buf, stats.days_ingested);
    put_u32(buf, stats.commands.len() as u32);
    for (name, c) in &stats.commands {
        put_str(buf, name);
        put_u64(buf, c.received);
        put_u64(buf, c.ok);
        put_u64(buf, c.errors);
    }
    put_u64(buf, stats.rejected_overload);
    put_u64(buf, stats.rejected_deadline);
    put_u64(buf, stats.rejected_connections);
    put_u64(buf, stats.worker_panics);
    put_u64(buf, stats.retrain_failures);
    put_named_u64s(buf, &stats.retrains);
    put_u64(buf, stats.retrain_edges_changed);
    put_u64(buf, stats.retrain_rows_folded);
    put_u64(buf, stats.retrain_incremental_ms);
    put_u64(buf, stats.snapshot_writes);
    put_u64(buf, stats.snapshot_write_failures);
    put_u64(buf, stats.snapshot_resumed);
    put_named_u64s(buf, &stats.snapshot_rejects);
    put_u64(buf, stats.ignored_observations);
    put_u64s(buf, &stats.latency_counts);
    put_u64(buf, stats.rate_limited_requests);
    put_u64(buf, stats.open_connections);
    put_u64(buf, stats.requests_json);
    put_u64(buf, stats.requests_binary);
    match &stats.shard {
        None => buf.push(0),
        Some(s) => {
            buf.push(1);
            put_u32(buf, s.index);
            put_u32(buf, s.count);
            put_u64(buf, s.owned_roads);
            // The full 64 bits travel verbatim — no hex detour like
            // the JSON codec needs.
            put_u64(buf, s.fingerprint);
        }
    }
    put_u32(buf, stats.shards.len() as u32);
    for h in &stats.shards {
        put_u32(buf, h.shard);
        put_bool(buf, h.up);
        put_bool(buf, h.plan_ok);
        put_u64(buf, h.epoch);
        put_u64(buf, h.days_ingested);
        put_u64(buf, h.restarts);
        put_u64(buf, h.owned_roads);
    }
    put_f64(buf, stats.drift_signal);
    put_u64(buf, stats.drift_triggers);
    put_u64(buf, stats.drift_last_rebootstrap_epoch);
    put_u64(buf, stats.drift_seed_overlap);
}

fn read_stats(r: &mut BinReader) -> Result<StatsReply, String> {
    Ok(StatsReply {
        epoch: r.u64()?,
        uptime_ms: r.u64()?,
        days_ingested: r.u64()?,
        commands: {
            let n = r.len(28)?;
            (0..n)
                .map(|_| {
                    Ok((
                        r.str()?,
                        CommandStats {
                            received: r.u64()?,
                            ok: r.u64()?,
                            errors: r.u64()?,
                        },
                    ))
                })
                .collect::<Result<Vec<_>, String>>()?
        },
        rejected_overload: r.u64()?,
        rejected_deadline: r.u64()?,
        rejected_connections: r.u64()?,
        worker_panics: r.u64()?,
        retrain_failures: r.u64()?,
        retrains: r.named_u64s()?,
        retrain_edges_changed: r.u64()?,
        retrain_rows_folded: r.u64()?,
        retrain_incremental_ms: r.u64()?,
        snapshot_writes: r.u64()?,
        snapshot_write_failures: r.u64()?,
        snapshot_resumed: r.u64()?,
        snapshot_rejects: r.named_u64s()?,
        ignored_observations: r.u64()?,
        latency_counts: r.u64s()?,
        rate_limited_requests: r.u64()?,
        open_connections: r.u64()?,
        requests_json: r.u64()?,
        requests_binary: r.u64()?,
        shard: if r.bool()? {
            Some(ShardIdentity {
                index: r.u32()?,
                count: r.u32()?,
                owned_roads: r.u64()?,
                fingerprint: r.u64()?,
            })
        } else {
            None
        },
        shards: {
            let n = r.len(30)?;
            (0..n)
                .map(|_| {
                    Ok(ShardHealth {
                        shard: r.u32()?,
                        up: r.bool()?,
                        plan_ok: r.bool()?,
                        epoch: r.u64()?,
                        days_ingested: r.u64()?,
                        restarts: r.u64()?,
                        owned_roads: r.u64()?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?
        },
        drift_signal: r.f64()?,
        drift_triggers: r.u64()?,
        drift_last_rebootstrap_epoch: r.u64()?,
        drift_seed_overlap: r.u64()?,
    })
}

impl Response {
    /// Encodes to the payload codec selected by `codec` (no frame
    /// header).
    pub fn encode_with(&self, codec: Codec) -> Vec<u8> {
        match codec {
            Codec::Json => self.encode(),
            Codec::Binary => self.encode_binary(),
        }
    }

    /// Encodes to a version-2 binary payload (no frame header).
    pub fn encode_binary(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            Response::Estimate(reply) => {
                buf.push(BRESP_ESTIMATE);
                put_estimate_reply(&mut buf, reply);
            }
            Response::Ingested {
                epoch,
                days_ingested,
            } => {
                buf.push(BRESP_INGESTED);
                put_u64(&mut buf, *epoch);
                put_u64(&mut buf, *days_ingested);
            }
            Response::Stats(stats) => {
                buf.push(BRESP_STATS);
                put_stats(&mut buf, stats);
            }
            Response::Snapshotted { epoch, path } => {
                buf.push(BRESP_SNAPSHOTTED);
                put_u64(&mut buf, *epoch);
                put_str(&mut buf, path);
            }
            Response::ShuttingDown => buf.push(BRESP_SHUTTING_DOWN),
            Response::Error { kind, message } => {
                buf.push(BRESP_ERROR);
                put_error(&mut buf, *kind, message);
            }
            Response::Batch(items) => {
                buf.push(BRESP_BATCH);
                put_u32(&mut buf, items.len() as u32);
                for item in items {
                    match item {
                        BatchOutcome::Estimate(reply) => {
                            buf.push(BRESP_ESTIMATE);
                            put_estimate_reply(&mut buf, reply);
                        }
                        BatchOutcome::Error { kind, message } => {
                            buf.push(BRESP_ERROR);
                            put_error(&mut buf, *kind, message);
                        }
                    }
                }
            }
        }
        buf
    }

    /// Decodes a version-2 binary payload.
    pub fn decode_binary(payload: &[u8]) -> Result<Response, String> {
        let mut r = BinReader::new(payload);
        let response = match r.u8()? {
            BRESP_ESTIMATE => Response::Estimate(read_estimate_reply(&mut r)?),
            BRESP_INGESTED => Response::Ingested {
                epoch: r.u64()?,
                days_ingested: r.u64()?,
            },
            BRESP_STATS => Response::Stats(read_stats(&mut r)?),
            BRESP_SNAPSHOTTED => Response::Snapshotted {
                epoch: r.u64()?,
                path: r.str()?,
            },
            BRESP_SHUTTING_DOWN => Response::ShuttingDown,
            BRESP_ERROR => {
                let (kind, message) = read_error(&mut r)?;
                Response::Error { kind, message }
            }
            BRESP_BATCH => {
                let n = r.len(1)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(match r.u8()? {
                        BRESP_ESTIMATE => BatchOutcome::Estimate(read_estimate_reply(&mut r)?),
                        BRESP_ERROR => {
                            let (kind, message) = read_error(&mut r)?;
                            BatchOutcome::Error { kind, message }
                        }
                        other => return Err(format!("bad batch item tag {other}")),
                    });
                }
                Response::Batch(items)
            }
            other => return Err(format!("unknown binary response tag {other}")),
        };
        r.finish()?;
        Ok(response)
    }
}

/// Framing-layer failures (before a payload can be interpreted).
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The connection died mid-frame.
    Truncated,
    /// The declared frame length exceeds the configured limit.
    Oversized {
        /// Declared payload length.
        declared: usize,
        /// Configured limit.
        max: usize,
    },
    /// The frame declared an impossible length (shorter than the
    /// version byte).
    BadLength,
    /// The abort callback fired while waiting for bytes.
    Aborted,
    /// The per-frame read deadline expired mid-frame (a trickling
    /// peer); the connection cannot be resynchronised.
    DeadlineExpired,
    /// Any other I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated => write!(f, "connection closed mid-frame"),
            WireError::Oversized { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds limit of {max}")
            }
            WireError::BadLength => write!(f, "frame length shorter than header"),
            WireError::Aborted => write!(f, "read aborted by shutdown"),
            WireError::DeadlineExpired => write!(f, "frame read deadline expired"),
            WireError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one JSON-codec frame: `[len u32 BE][version u8][payload]`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    write_frame_with_version(w, PROTOCOL_VERSION, payload)
}

/// [`write_frame`] with an explicit version byte — the binary codec
/// stamps [`BINARY_PROTOCOL_VERSION`] into the header.
pub fn write_frame_with_version(
    w: &mut impl Write,
    version: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    w.write_all(&frame_bytes(version, payload))?;
    w.flush()
}

/// Assembles one frame into an owned buffer — what the event loop
/// queues on a connection's write buffer (one allocation, one
/// `write(2)` per reply in the common case).
pub fn frame_bytes(version: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(5 + payload.len());
    frame.extend_from_slice(&((payload.len() + 1) as u32).to_be_bytes());
    frame.push(version);
    frame.extend_from_slice(payload);
    frame
}

/// Per-frame read deadline, measured from the **first byte** of the
/// frame — an idle connection between frames never expires, but a peer
/// trickling one byte at a time cannot hold a handler thread past the
/// limit (the slow-loris defence).
struct FrameTimer {
    limit: Option<std::time::Duration>,
    started: Option<std::time::Instant>,
}

impl FrameTimer {
    fn new(limit: Option<std::time::Duration>) -> FrameTimer {
        FrameTimer {
            limit,
            started: None,
        }
    }

    /// Starts the clock at the first consumed byte of the frame.
    fn mark(&mut self) {
        if self.limit.is_some() && self.started.is_none() {
            self.started = Some(std::time::Instant::now());
        }
    }

    fn expired(&self) -> bool {
        match (self.limit, self.started) {
            (Some(limit), Some(started)) => started.elapsed() > limit,
            _ => false,
        }
    }
}

/// Reads exactly `buf.len()` bytes, retrying timeouts and interrupts.
/// `started` tells the caller whether any byte of the current frame
/// was consumed before a failure (truncation vs. clean close). The
/// `abort` callback is polled on every timeout so a daemon shutdown
/// unblocks connection handlers within one read-timeout tick; the
/// frame timer is checked both after successful partial reads and on
/// timeouts, so a trickling peer that never lets the socket block
/// still hits the deadline.
fn read_exact_abortable(
    r: &mut impl Read,
    buf: &mut [u8],
    started: bool,
    abort: &dyn Fn() -> bool,
    timer: &mut FrameTimer,
) -> Result<(), WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if started || filled > 0 {
                    WireError::Truncated
                } else {
                    WireError::Closed
                });
            }
            Ok(n) => {
                filled += n;
                timer.mark();
                if timer.expired() {
                    return Err(WireError::DeadlineExpired);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if abort() {
                    return Err(WireError::Aborted);
                }
                if timer.expired() {
                    return Err(WireError::DeadlineExpired);
                }
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame, returning `(version, payload)`.
///
/// Returns [`WireError::Closed`] on a clean EOF between frames, and
/// [`WireError::Oversized`] *without consuming the payload* when the
/// declared length exceeds `max_frame_bytes` — the caller should send
/// a typed error and drop the connection, since the stream can no
/// longer be resynchronised.
pub fn read_frame(
    r: &mut impl Read,
    max_frame_bytes: usize,
    abort: &dyn Fn() -> bool,
) -> Result<(u8, Vec<u8>), WireError> {
    read_frame_with_deadline(r, max_frame_bytes, abort, None)
}

/// [`read_frame`] with a per-frame deadline: once the first byte of a
/// frame arrives, the rest must follow within `deadline` or the read
/// fails with [`WireError::DeadlineExpired`]. `None` waits forever
/// (between-frame idleness is never limited either way).
pub fn read_frame_with_deadline(
    r: &mut impl Read,
    max_frame_bytes: usize,
    abort: &dyn Fn() -> bool,
    deadline: Option<std::time::Duration>,
) -> Result<(u8, Vec<u8>), WireError> {
    let mut timer = FrameTimer::new(deadline);
    let mut len_buf = [0u8; 4];
    read_exact_abortable(r, &mut len_buf, false, abort, &mut timer)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len < 1 {
        return Err(WireError::BadLength);
    }
    if len - 1 > max_frame_bytes {
        return Err(WireError::Oversized {
            declared: len - 1,
            max: max_frame_bytes,
        });
    }
    let mut version = [0u8; 1];
    read_exact_abortable(r, &mut version, true, abort, &mut timer)?;
    let mut payload = vec![0u8; len - 1];
    read_exact_abortable(r, &mut payload, true, abort, &mut timer)?;
    Ok((version[0], payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const NO_ABORT: fn() -> bool = || false;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"cmd\":\"stats\"}").unwrap();
        let mut cursor = Cursor::new(buf);
        let (ver, payload) = read_frame(&mut cursor, 1024, &NO_ABORT).unwrap();
        assert_eq!(ver, PROTOCOL_VERSION);
        assert_eq!(payload, b"{\"cmd\":\"stats\"}");
        // Clean EOF after the frame.
        assert!(matches!(
            read_frame(&mut cursor, 1024, &NO_ABORT),
            Err(WireError::Closed)
        ));
    }

    #[test]
    fn truncated_length_prefix_is_distinguished() {
        // Two bytes of a length prefix, then EOF: mid-frame close.
        let mut cursor = Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut cursor, 1024, &NO_ABORT),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn truncated_payload_is_distinguished() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"cmd\":\"stats\"}").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, 1024, &NO_ABORT),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn oversized_frame_is_rejected_up_front() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[b' '; 100]).unwrap();
        let mut cursor = Cursor::new(buf);
        match read_frame(&mut cursor, 64, &NO_ABORT) {
            Err(WireError::Oversized { declared, max }) => {
                assert_eq!((declared, max), (100, 64));
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let mut cursor = Cursor::new(vec![0u8, 0, 0, 0]);
        assert!(matches!(
            read_frame(&mut cursor, 64, &NO_ABORT),
            Err(WireError::BadLength)
        ));
    }

    #[test]
    fn frame_deadline_fires_on_a_trickling_reader() {
        // One byte per read with a delay and never a WouldBlock — the
        // deadline must still fire, because expiry is checked after
        // successful partial reads too.
        struct Trickle {
            data: Vec<u8>,
            pos: usize,
        }
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                std::thread::sleep(std::time::Duration::from_millis(20));
                if self.pos >= self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut framed = Vec::new();
        write_frame(&mut framed, b"{\"cmd\":\"stats\"}").unwrap();
        let mut r = Trickle {
            data: framed.clone(),
            pos: 0,
        };
        let result = read_frame_with_deadline(
            &mut r,
            1024,
            &NO_ABORT,
            Some(std::time::Duration::from_millis(60)),
        );
        assert!(matches!(result, Err(WireError::DeadlineExpired)));
        // The same trickle completes when no deadline is armed.
        let mut r = Trickle {
            data: framed,
            pos: 0,
        };
        let (ver, payload) = read_frame_with_deadline(&mut r, 1024, &NO_ABORT, None).unwrap();
        assert_eq!(ver, PROTOCOL_VERSION);
        assert_eq!(payload, b"{\"cmd\":\"stats\"}");
    }

    #[test]
    fn unknown_command_decodes_to_typed_error() {
        let (kind, _) = Request::decode(b"{\"cmd\":\"frobnicate\"}").unwrap_err();
        assert_eq!(kind, ErrorKind::UnknownCommand);
        let (kind, _) = Request::decode(b"{\"slot\":3}").unwrap_err();
        assert_eq!(kind, ErrorKind::BadRequest);
        let (kind, _) = Request::decode(b"not json at all").unwrap_err();
        assert_eq!(kind, ErrorKind::BadRequest);
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Estimate {
                slot_of_day: 17,
                observations: vec![(3, 42.5), (9, 31.25)],
                deadline_ms: Some(250),
                roads: None,
            },
            Request::Estimate {
                slot_of_day: 0,
                observations: vec![],
                deadline_ms: None,
                roads: Some(vec![7, 2, 19]),
            },
            Request::Estimate {
                slot_of_day: 4,
                observations: vec![(1, 20.0)],
                deadline_ms: Some(100),
                roads: Some(vec![]),
            },
            Request::IngestDay {
                rows: vec![vec![30.0, 22.5], vec![28.0, 19.75]],
            },
            Request::Stats,
            Request::Shutdown,
            Request::Snapshot,
            Request::EstimateBatch {
                items: vec![
                    BatchItem {
                        slot_of_day: 3,
                        observations: vec![(0, 25.5), (8, 40.0)],
                        roads: None,
                    },
                    BatchItem {
                        slot_of_day: 9,
                        observations: vec![],
                        roads: Some(vec![4, 1]),
                    },
                ],
                deadline_ms: Some(500),
            },
            Request::EstimateBatch {
                items: vec![],
                deadline_ms: None,
            },
        ]
    }

    #[test]
    fn request_variants_roundtrip() {
        for req in sample_requests() {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn request_variants_roundtrip_binary() {
        for req in sample_requests() {
            assert_eq!(Request::decode_binary(&req.encode_binary()).unwrap(), req);
        }
    }

    #[test]
    fn ingest_nan_survives_as_null() {
        let req = Request::IngestDay {
            rows: vec![vec![30.0, f64::NAN]],
        };
        let decoded = Request::decode(&req.encode()).unwrap();
        let Request::IngestDay { rows } = decoded else {
            panic!("wrong variant");
        };
        assert_eq!(rows[0][0], 30.0);
        assert!(rows[0][1].is_nan());
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Estimate(EstimateReply {
                epoch: 3,
                speeds: vec![31.5, 20.25],
                p_up: vec![0.75, 0.5],
                trends: vec![true, false],
                ignored_observations: 2,
                unavailable: vec![],
            }),
            Response::Estimate(EstimateReply {
                epoch: 7,
                speeds: vec![31.5, 18.0],
                p_up: vec![0.75, 0.25],
                trends: vec![true, false],
                ignored_observations: 0,
                unavailable: vec![9, 12],
            }),
            Response::Ingested {
                epoch: 4,
                days_ingested: 9,
            },
            Response::Stats(StatsReply {
                epoch: 4,
                uptime_ms: 1234,
                days_ingested: 9,
                commands: vec![
                    (
                        "estimate".into(),
                        CommandStats {
                            received: 10,
                            ok: 9,
                            errors: 1,
                        },
                    ),
                    ("stats".into(), CommandStats::default()),
                ],
                rejected_overload: 5,
                rejected_deadline: 1,
                rejected_connections: 3,
                worker_panics: 2,
                retrain_failures: 1,
                retrains: vec![
                    ("incremental".into(), 7),
                    ("full_cold".into(), 1),
                    ("full_reanchor".into(), 0),
                ],
                retrain_edges_changed: 42,
                retrain_rows_folded: 1234,
                retrain_incremental_ms: 88,
                snapshot_writes: 4,
                snapshot_write_failures: 1,
                snapshot_resumed: 1,
                snapshot_rejects: vec![("bad_checksum".into(), 2), ("io".into(), 0)],
                ignored_observations: 6,
                latency_counts: vec![0; LATENCY_BUCKET_BOUNDS_US.len() + 1],
                rate_limited_requests: 3,
                open_connections: 12,
                requests_json: 40,
                requests_binary: 17,
                shard: Some(ShardIdentity {
                    index: 1,
                    count: 4,
                    owned_roads: 1024,
                    // Exercises all 64 bits through the hex encoding.
                    fingerprint: 0xdead_beef_cafe_f00d,
                }),
                shards: vec![
                    ShardHealth {
                        shard: 0,
                        up: true,
                        plan_ok: true,
                        epoch: 4,
                        days_ingested: 9,
                        restarts: 0,
                        owned_roads: 2048,
                    },
                    ShardHealth {
                        shard: 1,
                        up: false,
                        plan_ok: false,
                        epoch: 0,
                        days_ingested: 0,
                        restarts: 2,
                        owned_roads: 1024,
                    },
                ],
                drift_signal: 0.3125,
                drift_triggers: 2,
                drift_last_rebootstrap_epoch: 7,
                drift_seed_overlap: 5,
            }),
            Response::Snapshotted {
                epoch: 5,
                path: "/tmp/snapshots/epoch-00000000000000000005.csnap".into(),
            },
            Response::ShuttingDown,
            Response::Error {
                kind: ErrorKind::Overloaded,
                message: "queue full".into(),
            },
            Response::Batch(vec![
                BatchOutcome::Estimate(EstimateReply {
                    epoch: 3,
                    speeds: vec![28.75, f64::NAN],
                    p_up: vec![0.5, 0.25],
                    trends: vec![false, true],
                    ignored_observations: 1,
                    unavailable: vec![5],
                }),
                BatchOutcome::Error {
                    kind: ErrorKind::BadRequest,
                    message: "road 99 outside the graph".into(),
                },
            ]),
            Response::Batch(vec![]),
        ]
    }

    /// Bit-level equality: NaNs compare equal by bits, not by `==`.
    fn replies_bit_equal(a: &EstimateReply, b: &EstimateReply) -> bool {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        a.epoch == b.epoch
            && bits(&a.speeds) == bits(&b.speeds)
            && bits(&a.p_up) == bits(&b.p_up)
            && a.trends == b.trends
            && a.ignored_observations == b.ignored_observations
            && a.unavailable == b.unavailable
    }

    fn responses_bit_equal(a: &Response, b: &Response) -> bool {
        match (a, b) {
            (Response::Estimate(a), Response::Estimate(b)) => replies_bit_equal(a, b),
            (Response::Batch(a), Response::Batch(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| match (x, y) {
                        (BatchOutcome::Estimate(x), BatchOutcome::Estimate(y)) => {
                            replies_bit_equal(x, y)
                        }
                        _ => x == y,
                    })
            }
            _ => a == b,
        }
    }

    #[test]
    fn response_variants_roundtrip() {
        for resp in sample_responses() {
            let decoded = Response::decode(&resp.encode()).unwrap();
            assert!(
                responses_bit_equal(&decoded, &resp),
                "json roundtrip changed {resp:?}"
            );
        }
    }

    #[test]
    fn response_variants_roundtrip_binary() {
        for resp in sample_responses() {
            let decoded = Response::decode_binary(&resp.encode_binary()).unwrap();
            assert!(
                responses_bit_equal(&decoded, &resp),
                "binary roundtrip changed {resp:?}"
            );
        }
    }

    #[test]
    fn pre_shard_frames_still_decode() {
        // A frame from a build without the sharding fields must decode
        // with the defaults, both directions.
        let req = Request::decode(
            b"{\"cmd\":\"estimate\",\"slot\":3,\"obs\":[[1,20.5]],\"deadline_ms\":null}",
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Estimate {
                slot_of_day: 3,
                observations: vec![(1, 20.5)],
                deadline_ms: None,
                roads: None,
            }
        );
        let resp = Response::decode(
            b"{\"ok\":\"estimate\",\"epoch\":2,\"speeds\":[30],\"p_up\":[0.5],\
              \"trends\":[true],\"ignored\":0}",
        )
        .unwrap();
        let Response::Estimate(reply) = resp else {
            panic!("wrong variant");
        };
        assert!(reply.unavailable.is_empty());
    }

    #[test]
    fn binary_frame_roundtrip_carries_version_two() {
        let payload = Request::Stats.encode_binary();
        let mut buf = Vec::new();
        write_frame_with_version(&mut buf, BINARY_PROTOCOL_VERSION, &payload).unwrap();
        assert_eq!(buf, frame_bytes(BINARY_PROTOCOL_VERSION, &payload));
        let mut cursor = Cursor::new(buf);
        let (ver, read) = read_frame(&mut cursor, 1024, &NO_ABORT).unwrap();
        assert_eq!(ver, BINARY_PROTOCOL_VERSION);
        assert_eq!(read, payload);
    }

    #[test]
    fn codec_maps_versions_both_ways() {
        assert_eq!(Codec::Json.version(), PROTOCOL_VERSION);
        assert_eq!(Codec::Binary.version(), BINARY_PROTOCOL_VERSION);
        assert_eq!(Codec::from_version(1), Some(Codec::Json));
        assert_eq!(Codec::from_version(2), Some(Codec::Binary));
        assert_eq!(Codec::from_version(42), None);
    }

    #[test]
    fn malformed_binary_request_decodes_to_typed_error() {
        // Unknown tag: the binary twin of `{"cmd":"frobnicate"}`.
        let (kind, _) = Request::decode_binary(&[200]).unwrap_err();
        assert_eq!(kind, ErrorKind::UnknownCommand);
        // Empty payload.
        let (kind, _) = Request::decode_binary(&[]).unwrap_err();
        assert_eq!(kind, ErrorKind::BadRequest);
        // Truncated mid-field.
        let mut good = Request::Estimate {
            slot_of_day: 3,
            observations: vec![(1, 20.5)],
            deadline_ms: None,
            roads: None,
        }
        .encode_binary();
        good.truncate(good.len() - 2);
        let (kind, msg) = Request::decode_binary(&good).unwrap_err();
        assert_eq!(kind, ErrorKind::BadRequest);
        assert!(msg.contains("binary"), "message names the codec: {msg}");
        // Trailing garbage after a complete request.
        let mut padded = Request::Stats.encode_binary();
        padded.push(0);
        let (kind, _) = Request::decode_binary(&padded).unwrap_err();
        assert_eq!(kind, ErrorKind::BadRequest);
        // A hostile element count fails the bounds check instead of
        // attempting a 4 GiB allocation.
        let mut hostile = vec![BREQ_ESTIMATE];
        hostile.extend_from_slice(&3u64.to_le_bytes());
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        let (kind, _) = Request::decode_binary(&hostile).unwrap_err();
        assert_eq!(kind, ErrorKind::BadRequest);
    }

    #[test]
    fn malformed_binary_response_is_an_error() {
        assert!(Response::decode_binary(&[99]).is_err());
        assert!(Response::decode_binary(&[]).is_err());
        let mut good = Response::ShuttingDown.encode_binary();
        good.push(7);
        assert!(Response::decode_binary(&good).is_err());
        // A bad bool byte inside a stats reply is caught, not folded.
        let mut truncated = Response::Ingested {
            epoch: 3,
            days_ingested: 8,
        }
        .encode_binary();
        truncated.truncate(truncated.len() - 1);
        assert!(Response::decode_binary(&truncated).is_err());
    }

    #[test]
    fn binary_floats_travel_bit_verbatim() {
        // Denormals, negative zero, infinities, and a non-canonical
        // NaN payload: the binary codec must not normalise any of them.
        let specials = [
            f64::MIN_POSITIVE / 2.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::from_bits(0x7ff8_dead_beef_0001),
        ];
        let reply = EstimateReply {
            epoch: 1,
            speeds: specials.to_vec(),
            p_up: vec![],
            trends: vec![],
            ignored_observations: 0,
            unavailable: vec![],
        };
        let decoded = Response::decode_binary(&Response::Estimate(reply.clone()).encode_binary());
        let Ok(Response::Estimate(out)) = decoded else {
            panic!("wrong variant");
        };
        for (a, b) in reply.speeds.iter().zip(&out.speeds) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
