//! Blocking TCP client for `crowdspeedd`, shared by the `crowdspeed
//! client` subcommand, the daemon throughput bench, and the
//! integration suite — everyone speaks the wire through this one
//! implementation.
//!
//! # Resilience model
//!
//! Every attempt is bounded: connects respect
//! [`ClientConfig::connect_timeout`], writes respect
//! [`ClientConfig::write_timeout`], and each request carries an
//! overall read deadline ([`ClientConfig::request_timeout`]) enforced
//! through `read_frame`'s abort hook — a hung daemon costs the caller
//! the configured timeout, never forever. After a timeout the
//! connection is poisoned (a late reply would desync the strict
//! request/response framing), so the next attempt reconnects.
//!
//! Retries are opt-in ([`ClientConfig::retries`], default 0) and apply
//! **only** to the idempotent commands `ESTIMATE` and `STATS`, with
//! exponential backoff. `INGEST_DAY` is never retried: a retry after a
//! timed-out ingest could fold the same day into the model twice.
//!
//! # Codecs
//!
//! Requests are encoded with [`ClientConfig::codec`] (JSON by default;
//! binary for the compact hot path). Replies are decoded by the
//! version byte *they* carry, so a client can talk to any server that
//! answers in either codec — the daemon always answers in kind.
//!
//! # Pipelining
//!
//! [`Client::send`] / [`Client::recv`] split one request into its
//! write and read halves so a caller holding several clients (the
//! router's shard links) can keep one request in flight on each link
//! concurrently. The protocol stays strict request/response per
//! connection: at most one `send` may be outstanding per client.

use crate::protocol::{
    read_frame, write_frame_with_version, BatchItem, BatchOutcome, Codec, ErrorKind, EstimateReply,
    Request, Response, StatsReply, WireError, DEFAULT_MAX_FRAME_BYTES,
};
use crate::ServerError;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Granularity at which a blocked read re-checks the request deadline.
const READ_TICK: Duration = Duration::from_millis(50);

/// Timeouts and retry policy for a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection; `None` blocks
    /// indefinitely.
    pub connect_timeout: Option<Duration>,
    /// Overall bound on waiting for one response; `None` waits
    /// forever. Expiry surfaces as [`ServerError::TimedOut`] and
    /// forces a reconnect before the next request.
    pub request_timeout: Option<Duration>,
    /// Bound on each socket write; `None` blocks indefinitely.
    pub write_timeout: Option<Duration>,
    /// Extra attempts after the first for the idempotent commands
    /// (`ESTIMATE`, `STATS`). `INGEST_DAY` and `SHUTDOWN` never retry.
    pub retries: u32,
    /// First retry delay; doubled per attempt up to [`backoff_max`].
    ///
    /// [`backoff_max`]: ClientConfig::backoff_max
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff delay.
    pub backoff_max: Duration,
    /// Frames declaring more payload than this are refused.
    pub max_frame_bytes: usize,
    /// Wire codec for outgoing requests. Replies are decoded by their
    /// own version byte regardless of this setting.
    pub codec: Codec,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            request_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            retries: 0,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            codec: Codec::Json,
        }
    }
}

/// A connected client. One request in flight at a time (the protocol
/// is strict request/response per connection).
pub struct Client {
    addrs: Vec<SocketAddr>,
    stream: TcpStream,
    config: ClientConfig,
    /// Set when the stream can no longer be trusted to be in sync
    /// (timeout mid-response, write failure, dead socket); the next
    /// attempt reconnects first.
    needs_reconnect: bool,
}

impl Client {
    /// Connects to a running daemon with the default config (bounded
    /// connect/read/write, no retries).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServerError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with an explicit timeout/retry policy.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Client, ServerError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ServerError::Io(std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            )));
        }
        let stream = open_stream(&addrs, &config)?;
        Ok(Client {
            addrs,
            stream,
            config,
            needs_reconnect: false,
        })
    }

    /// The active timeout/retry policy.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Sends one request and blocks for its response — a single
    /// attempt, no retries, but still bounded by the configured
    /// timeouts.
    pub fn request(&mut self, request: &Request) -> Result<Response, ServerError> {
        self.send(request)?;
        self.recv()
    }

    /// Writes one request frame without waiting for the reply (the
    /// write half of [`Client::request`]). The caller must [`recv`]
    /// the reply before sending again — the protocol is strict
    /// request/response per connection.
    ///
    /// [`recv`]: Client::recv
    pub fn send(&mut self, request: &Request) -> Result<(), ServerError> {
        if self.needs_reconnect {
            self.stream = open_stream(&self.addrs, &self.config)?;
            self.needs_reconnect = false;
        }
        let codec = self.config.codec;
        if let Err(e) = write_frame_with_version(
            &mut self.stream,
            codec.version(),
            &request.encode_with(codec),
        ) {
            self.needs_reconnect = true;
            return Err(ServerError::Io(e));
        }
        Ok(())
    }

    /// Blocks for the reply to the last [`Client::send`] (the read
    /// half of [`Client::request`]), bounded by
    /// [`ClientConfig::request_timeout`].
    pub fn recv(&mut self) -> Result<Response, ServerError> {
        let deadline = self.config.request_timeout.map(|t| Instant::now() + t);
        let expired = || deadline.is_some_and(|d| Instant::now() >= d);
        let (version, payload) =
            match read_frame(&mut self.stream, self.config.max_frame_bytes, &expired) {
                Ok(frame) => frame,
                Err(WireError::Aborted) => {
                    // A reply may still arrive later; reading it as the
                    // answer to the *next* request would desync the
                    // stream, so poison the connection.
                    self.needs_reconnect = true;
                    return Err(ServerError::TimedOut);
                }
                Err(e) => {
                    self.needs_reconnect = true;
                    return Err(ServerError::Wire(e));
                }
            };
        // Replies are decoded by the version *they* declare, not the
        // codec this client sends: error frames for unsupported
        // versions are always JSON, and a mixed-codec server stays
        // interoperable.
        match Codec::from_version(version) {
            Some(Codec::Json) => {
                Response::decode(&payload).map_err(ServerError::UnexpectedResponse)
            }
            Some(Codec::Binary) => {
                Response::decode_binary(&payload).map_err(ServerError::UnexpectedResponse)
            }
            None => Err(ServerError::UnexpectedResponse(format!(
                "server answered with protocol version {version}"
            ))),
        }
    }

    /// Retry loop for idempotent requests: up to `1 + retries`
    /// attempts, exponential backoff, reconnect handled by
    /// [`Client::request`].
    fn request_idempotent(&mut self, request: &Request) -> Result<Response, ServerError> {
        let mut backoff = self.config.backoff_base;
        let mut attempt = 0u32;
        loop {
            match self.request(request) {
                Ok(response) => return Ok(response),
                Err(e) if attempt < self.config.retries && retryable(&e) => {
                    attempt += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.config.backoff_max);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Requests an estimate; a typed daemon error becomes
    /// [`ServerError::Remote`]. Retried per [`ClientConfig::retries`]
    /// (estimation is idempotent).
    pub fn estimate(
        &mut self,
        slot_of_day: usize,
        observations: Vec<(u32, f64)>,
        deadline_ms: Option<u64>,
    ) -> Result<EstimateReply, ServerError> {
        self.estimate_roads(slot_of_day, observations, deadline_ms, None)
    }

    /// [`Client::estimate`] with an optional road filter: when `roads`
    /// is `Some`, the reply's vectors cover exactly those roads in that
    /// order (on a shard worker, the roads must be owned by the shard).
    pub fn estimate_roads(
        &mut self,
        slot_of_day: usize,
        observations: Vec<(u32, f64)>,
        deadline_ms: Option<u64>,
        roads: Option<Vec<u32>>,
    ) -> Result<EstimateReply, ServerError> {
        match self.request_idempotent(&Request::Estimate {
            slot_of_day,
            observations,
            deadline_ms,
            roads,
        })? {
            Response::Estimate(reply) => Ok(reply),
            other => Err(unexpected(other)),
        }
    }

    /// Sends many estimate queries in one `ESTIMATE_BATCH` frame and
    /// returns one outcome per item in request order. The whole batch
    /// costs one round-trip and one admission slot; per-item failures
    /// degrade to typed [`BatchOutcome::Error`]s instead of sinking
    /// their neighbours. Retried per [`ClientConfig::retries`]
    /// (estimation is idempotent).
    pub fn estimate_batch(
        &mut self,
        items: Vec<BatchItem>,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<BatchOutcome>, ServerError> {
        match self.request_idempotent(&Request::EstimateBatch { items, deadline_ms })? {
            Response::Batch(outcomes) => Ok(outcomes),
            other => Err(unexpected(other)),
        }
    }

    /// Ingests one day and waits for the new epoch. Never retried —
    /// a lost reply does not prove the day was not ingested, and
    /// double-ingesting skews the model.
    pub fn ingest_day(&mut self, rows: Vec<Vec<f64>>) -> Result<(u64, u64), ServerError> {
        match self.request(&Request::IngestDay { rows })? {
            Response::Ingested {
                epoch,
                days_ingested,
            } => Ok((epoch, days_ingested)),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the metrics snapshot. Retried per
    /// [`ClientConfig::retries`] (read-only).
    pub fn stats(&mut self) -> Result<StatsReply, ServerError> {
        match self.request_idempotent(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Forces a model snapshot to disk, returning the captured epoch
    /// and the written path. Retried per [`ClientConfig::retries`]
    /// (rewriting the same epoch's file is idempotent). A daemon
    /// running without a snapshot directory answers
    /// [`ErrorKind::SnapshotUnavailable`].
    pub fn snapshot(&mut self) -> Result<(u64, String), ServerError> {
        match self.request_idempotent(&Request::Snapshot)? {
            Response::Snapshotted { epoch, path } => Ok((epoch, path)),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to shut down; `Ok(())` once acknowledged. Not
    /// retried.
    pub fn shutdown(&mut self) -> Result<(), ServerError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

/// Transient failures worth another attempt: transport-level errors,
/// deadline expiry, and the daemon's explicit `Overloaded` (its typed
/// "retry later"). Any other remote error is deterministic — retrying
/// the same request would fail the same way.
fn retryable(e: &ServerError) -> bool {
    match e {
        ServerError::Io(_) | ServerError::Wire(_) | ServerError::TimedOut => true,
        ServerError::Remote { kind, .. } => *kind == ErrorKind::Overloaded,
        _ => false,
    }
}

/// Opens a socket to the first reachable address, honouring the
/// connect timeout, and arms the per-read tick + write timeout.
fn open_stream(addrs: &[SocketAddr], config: &ClientConfig) -> Result<TcpStream, ServerError> {
    let mut last_err: Option<std::io::Error> = None;
    for addr in addrs {
        let attempt = match config.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(addr, timeout),
            None => TcpStream::connect(addr),
        };
        match attempt {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                // Short read timeout so `read_frame` wakes up to poll
                // the request deadline instead of blocking forever.
                stream.set_read_timeout(Some(READ_TICK))?;
                stream.set_write_timeout(config.write_timeout)?;
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(ServerError::Io(last_err.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address to try")
    })))
}

fn unexpected(response: Response) -> ServerError {
    match response {
        Response::Error { kind, message } => ServerError::Remote { kind, message },
        other => ServerError::UnexpectedResponse(format!("mismatched response: {other:?}")),
    }
}
