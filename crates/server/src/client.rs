//! Blocking TCP client for `crowdspeedd`, shared by the `crowdspeed
//! client` subcommand, the daemon throughput bench, and the
//! integration suite — everyone speaks the wire through this one
//! implementation.

use crate::protocol::{
    read_frame, write_frame, EstimateReply, Request, Response, StatsReply, DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
use crate::ServerError;
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client. One request in flight at a time (the protocol
/// is strict request/response per connection).
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServerError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ServerError> {
        write_frame(&mut self.stream, &request.encode())?;
        let (version, payload) = read_frame(&mut self.stream, self.max_frame_bytes, &|| false)
            .map_err(ServerError::Wire)?;
        if version != PROTOCOL_VERSION {
            return Err(ServerError::UnexpectedResponse(format!(
                "server answered with protocol version {version}"
            )));
        }
        Response::decode(&payload).map_err(ServerError::UnexpectedResponse)
    }

    /// Requests an estimate; a typed daemon error becomes
    /// [`ServerError::Remote`].
    pub fn estimate(
        &mut self,
        slot_of_day: usize,
        observations: Vec<(u32, f64)>,
        deadline_ms: Option<u64>,
    ) -> Result<EstimateReply, ServerError> {
        match self.request(&Request::Estimate {
            slot_of_day,
            observations,
            deadline_ms,
        })? {
            Response::Estimate(reply) => Ok(reply),
            other => Err(unexpected(other)),
        }
    }

    /// Ingests one day and waits for the new epoch.
    pub fn ingest_day(&mut self, rows: Vec<Vec<f64>>) -> Result<(u64, u64), ServerError> {
        match self.request(&Request::IngestDay { rows })? {
            Response::Ingested {
                epoch,
                days_ingested,
            } => Ok((epoch, days_ingested)),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the metrics snapshot.
    pub fn stats(&mut self) -> Result<StatsReply, ServerError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to shut down; `Ok(())` once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ServerError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(response: Response) -> ServerError {
    match response {
        Response::Error { kind, message } => ServerError::Remote { kind, message },
        other => ServerError::UnexpectedResponse(format!("mismatched response: {other:?}")),
    }
}
