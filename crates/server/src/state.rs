//! Shared daemon state: the hot-swappable model slot and the training
//! state that produces new epochs.
//!
//! # Epoch-swap invariants
//!
//! * Readers take the [`parking_lot::RwLock`] read lock only long
//!   enough to clone the `Arc<ModelEpoch>`; every estimate is computed
//!   against that clone, outside any lock.
//! * [`ModelSlot::publish`] takes the write lock only to swap the
//!   pointer and bump the epoch — never while training. Training runs
//!   on the ingesting connection's thread under the separate
//!   [`TrainState`] mutex, so serving throughput is unaffected by a
//!   retrain in progress.
//! * In-flight requests admitted before a swap finish on the epoch
//!   they started with; requests admitted after see the new epoch.
//!   There is no window in which an estimate mixes two models.

use crowdspeed::prelude::*;
use crowdspeed::CoreError;
use parking_lot::RwLock;
use roadnet::RoadGraph;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use trafficsim::{SlotClock, SpeedField};

/// Why a retrain produced no new model.
#[derive(Debug)]
pub enum RetrainError {
    /// The training pipeline returned a typed error.
    Core(CoreError),
    /// The training pipeline panicked; the payload message is carried
    /// for the daemon's typed `Internal` response. The [`TrainState`]
    /// was rolled back to its pre-ingest counters, so the next ingest
    /// starts from a consistent model.
    Panicked(String),
}

impl std::fmt::Display for RetrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetrainError::Core(e) => write!(f, "retrain failed: {e}"),
            RetrainError::Panicked(m) => write!(f, "retrain panicked: {m}"),
        }
    }
}

/// Best-effort text of a caught panic payload (`&str` and `String`
/// payloads; anything else gets a placeholder).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One published model generation.
pub struct ModelEpoch {
    /// Monotonic generation counter (first publish = 1).
    pub epoch: u64,
    /// The trained estimator serving this generation.
    pub estimator: TrafficEstimator,
}

/// The serving-side pointer to the current model, swappable with zero
/// downtime.
pub struct ModelSlot {
    current: RwLock<Arc<ModelEpoch>>,
}

impl ModelSlot {
    /// Wraps a freshly trained estimator as epoch 1.
    pub fn new(estimator: TrafficEstimator) -> ModelSlot {
        ModelSlot {
            current: RwLock::new(Arc::new(ModelEpoch {
                epoch: 1,
                estimator,
            })),
        }
    }

    /// Snapshot of the current model; cheap (one `Arc` clone under a
    /// read lock).
    pub fn current(&self) -> Arc<ModelEpoch> {
        self.current.read().clone()
    }

    /// Wraps an estimator restored from a snapshot, continuing the
    /// epoch sequence the writing process had reached rather than
    /// restarting at 1 — `STATS` gauges and `Ingested` replies stay
    /// monotonic across a restart.
    pub fn with_epoch(estimator: TrafficEstimator, epoch: u64) -> ModelSlot {
        ModelSlot {
            current: RwLock::new(Arc::new(ModelEpoch { epoch, estimator })),
        }
    }

    /// Atomically publishes `estimator` as the next epoch and returns
    /// the new epoch number. Readers holding the previous `Arc` are
    /// unaffected.
    pub fn publish(&self, estimator: TrafficEstimator) -> u64 {
        let mut slot = self.current.write();
        let epoch = slot.epoch + 1;
        *slot = Arc::new(ModelEpoch { epoch, estimator });
        epoch
    }
}

/// The daemon's startup inputs, bundled so [`crate::Daemon::spawn_from`]
/// can decide between resuming a persisted snapshot and bootstrapping
/// from the history — without the caller pre-committing to either path.
pub struct TrainInputs {
    /// The road network.
    pub graph: RoadGraph,
    /// Bootstrap history (ignored when a valid snapshot resumes —
    /// the snapshot's own day history supersedes it).
    pub history: HistoricalData,
    /// The frozen seed set.
    pub seeds: Vec<roadnet::RoadId>,
    /// Correlation-graph thresholds for the online model.
    pub corr_config: CorrelationConfig,
    /// Estimator configuration.
    pub config: EstimatorConfig,
}

/// Everything needed to retrain off the serving path: the road graph,
/// the growing day history, the online correlation model, and the seed
/// set + estimator configuration frozen at startup.
pub struct TrainState {
    graph: RoadGraph,
    clock: SlotClock,
    days: Vec<SpeedField>,
    online: crowdspeed::online::OnlineCorrelation,
    seeds: Vec<roadnet::RoadId>,
    config: EstimatorConfig,
}

impl TrainState {
    /// Bootstraps the online correlation model from `history` and
    /// freezes the training inputs.
    pub fn new(
        graph: RoadGraph,
        history: &HistoricalData,
        seeds: Vec<roadnet::RoadId>,
        corr_config: &CorrelationConfig,
        config: EstimatorConfig,
    ) -> TrainState {
        let online = crowdspeed::online::OnlineCorrelation::bootstrap(&graph, history, corr_config);
        TrainState {
            graph,
            clock: *history.clock(),
            days: history.days().to_vec(),
            online,
            seeds,
            config,
        }
    }

    /// Rebuilds the training state from a persisted snapshot: the day
    /// history and online accumulator come back exactly as written, so
    /// **no** bootstrap pass runs — the whole point of resuming is to
    /// skip that work — and a subsequent [`TrainState::train`] or
    /// `INGEST_DAY` continues the identical model trajectory the
    /// writing process was on.
    pub fn resume(
        graph: RoadGraph,
        seeds: Vec<roadnet::RoadId>,
        config: EstimatorConfig,
        clock: SlotClock,
        days: Vec<SpeedField>,
        online: crowdspeed::online::OnlineCorrelation,
    ) -> TrainState {
        TrainState {
            graph,
            clock,
            days,
            online,
            seeds,
            config,
        }
    }

    /// The road network the model spans.
    pub fn graph(&self) -> &RoadGraph {
        &self.graph
    }

    /// The slot discretisation of the day history.
    pub fn clock(&self) -> SlotClock {
        self.clock
    }

    /// The full day history (bootstrap window plus ingested days).
    pub fn days(&self) -> &[SpeedField] {
        &self.days
    }

    /// The live online correlation accumulator.
    pub fn online(&self) -> &crowdspeed::online::OnlineCorrelation {
        &self.online
    }

    /// The frozen seed set.
    pub fn seeds(&self) -> &[roadnet::RoadId] {
        &self.seeds
    }

    /// The estimator configuration frozen at startup.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Trains a fresh estimator from the current history and the live
    /// correlation counters. Deterministic given the same ingested
    /// days, which is what lets the integration suite assert a
    /// post-swap daemon serves bit-identical estimates to an
    /// independently trained model.
    pub fn train(&self) -> Result<TrafficEstimator, CoreError> {
        let history = HistoricalData::from_days(self.clock, self.days.clone());
        TrafficEstimator::train(
            &self.graph,
            &history,
            self.online.stats(),
            &self.online.correlation_graph(),
            &self.seeds,
            &self.config,
        )
    }

    /// Feeds one observed day into the online correlation model and
    /// the training history. Rejects shape mismatches without mutating
    /// either.
    pub fn ingest_day(&mut self, day: SpeedField) -> Result<(), CoreError> {
        self.online.ingest_day(&day)?;
        self.days.push(day);
        Ok(())
    }

    /// The daemon's fault-isolated retrain: folds `day` in and trains a
    /// new estimator, catching any panic along the way.
    ///
    /// On a panic the online counters and day history are rolled back
    /// to their pre-ingest snapshot, so a fault mid-fold cannot leave
    /// half-updated statistics behind — the state either advances by
    /// exactly one day with a freshly trained model, or not at all.
    /// The caller keeps serving the previous epoch either way
    /// (graceful degradation); `parking_lot` mutexes are not poisoned
    /// by design, so the train path stays usable after the rollback.
    pub fn ingest_and_train(
        &mut self,
        day: SpeedField,
    ) -> Result<(TrafficEstimator, u64), RetrainError> {
        let online_snapshot = self.online.clone();
        let days_before = self.days.len();
        let this = &mut *self;
        let outcome = catch_unwind(AssertUnwindSafe(move || -> Result<_, CoreError> {
            crate::failpoint::fire("retrain");
            this.ingest_day(day)?;
            let estimator = this.train()?;
            Ok(estimator)
        }));
        match outcome {
            Ok(Ok(estimator)) => Ok((estimator, self.days_ingested())),
            Ok(Err(e)) => Err(RetrainError::Core(e)),
            Err(payload) => {
                self.online = online_snapshot;
                self.days.truncate(days_before);
                Err(RetrainError::Panicked(panic_message(payload)))
            }
        }
    }

    /// Days the online model has ingested (bootstrap window included).
    pub fn days_ingested(&self) -> u64 {
        self.online.days_ingested() as u64
    }

    /// Expected `(slots, roads)` shape for an ingested day.
    pub fn day_shape(&self) -> (usize, usize) {
        (self.clock.slots_per_day, self.graph.num_roads())
    }
}
