//! Shared daemon state: the hot-swappable model slot and the training
//! state that produces new epochs.
//!
//! # Epoch-swap invariants
//!
//! * Readers take the [`parking_lot::RwLock`] read lock only long
//!   enough to clone the `Arc<ModelEpoch>`; every estimate is computed
//!   against that clone, outside any lock.
//! * [`ModelSlot::publish`] takes the write lock only to swap the
//!   pointer and bump the epoch — never while training. Training runs
//!   on the ingesting connection's thread under the separate
//!   [`TrainState`] mutex, so serving throughput is unaffected by a
//!   retrain in progress.
//! * In-flight requests admitted before a swap finish on the epoch
//!   they started with; requests admitted after see the new epoch.
//!   There is no window in which an estimate mixes two models.

use crowdspeed::online::IngestDelta;
use crowdspeed::prelude::*;
use crowdspeed::CoreError;
use parking_lot::RwLock;
use roadnet::RoadGraph;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use trafficsim::{SlotClock, SpeedField};

/// Why a retrain produced no new model.
#[derive(Debug)]
pub enum RetrainError {
    /// The training pipeline returned a typed error.
    Core(CoreError),
    /// The training pipeline panicked; the payload message is carried
    /// for the daemon's typed `Internal` response. The [`TrainState`]
    /// was rolled back to its pre-ingest counters, so the next ingest
    /// starts from a consistent model.
    Panicked(String),
}

impl std::fmt::Display for RetrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetrainError::Core(e) => write!(f, "retrain failed: {e}"),
            RetrainError::Panicked(m) => write!(f, "retrain panicked: {m}"),
        }
    }
}

/// Best-effort text of a caught panic payload (`&str` and `String`
/// payloads; anything else gets a placeholder).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One published model generation.
pub struct ModelEpoch {
    /// Monotonic generation counter (first publish = 1).
    pub epoch: u64,
    /// The trained estimator serving this generation.
    pub estimator: TrafficEstimator,
}

/// The serving-side pointer to the current model, swappable with zero
/// downtime.
pub struct ModelSlot {
    current: RwLock<Arc<ModelEpoch>>,
}

impl ModelSlot {
    /// Wraps a freshly trained estimator as epoch 1.
    pub fn new(estimator: TrafficEstimator) -> ModelSlot {
        ModelSlot {
            current: RwLock::new(Arc::new(ModelEpoch {
                epoch: 1,
                estimator,
            })),
        }
    }

    /// Snapshot of the current model; cheap (one `Arc` clone under a
    /// read lock).
    pub fn current(&self) -> Arc<ModelEpoch> {
        self.current.read().clone()
    }

    /// Wraps an estimator restored from a snapshot, continuing the
    /// epoch sequence the writing process had reached rather than
    /// restarting at 1 — `STATS` gauges and `Ingested` replies stay
    /// monotonic across a restart.
    pub fn with_epoch(estimator: TrafficEstimator, epoch: u64) -> ModelSlot {
        ModelSlot {
            current: RwLock::new(Arc::new(ModelEpoch { epoch, estimator })),
        }
    }

    /// Atomically publishes `estimator` as the next epoch and returns
    /// the new epoch number. Readers holding the previous `Arc` are
    /// unaffected.
    pub fn publish(&self, estimator: TrafficEstimator) -> u64 {
        let mut slot = self.current.write();
        let epoch = slot.epoch + 1;
        *slot = Arc::new(ModelEpoch { epoch, estimator });
        epoch
    }
}

/// The daemon's startup inputs, bundled so [`crate::Daemon::spawn_from`]
/// can decide between resuming a persisted snapshot and bootstrapping
/// from the history — without the caller pre-committing to either path.
pub struct TrainInputs {
    /// The road network.
    pub graph: RoadGraph,
    /// Bootstrap history (ignored when a valid snapshot resumes —
    /// the snapshot's own day history supersedes it).
    pub history: HistoricalData,
    /// The frozen seed set.
    pub seeds: Vec<roadnet::RoadId>,
    /// Correlation-graph thresholds for the online model.
    pub corr_config: CorrelationConfig,
    /// Estimator configuration.
    pub config: EstimatorConfig,
}

/// How one `INGEST_DAY` retrain was carried out — the label behind the
/// `retrain_*` metrics family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainMode {
    /// The ingest delta was propagated through the standing
    /// [`IncrementalTrainer`]: `O(changed)` work per layer.
    Incremental = 0,
    /// No trainer was standing (first ingest after a snapshot resume,
    /// or the previous retrain failed), so one was rebuilt from
    /// scratch **under the existing frozen context** — preserving the
    /// model trajectory a non-restarted daemon would have followed.
    FullCold = 1,
    /// The delta touched more of the live graph than
    /// [`EstimatorConfig::max_incremental_fraction`] allows, so the
    /// training context was re-anchored to the current live graph and
    /// the trainer rebuilt from scratch.
    FullReanchor = 2,
    /// The drift trigger fired ([`EstimatorConfig::drift`]): the
    /// history was truncated to the calibration window, the online
    /// model rebootstrapped (fresh reference means + counters), seeds
    /// re-selected against the new graph, and the trainer rebuilt —
    /// bit-identical to a cold-started [`TrainState`] given the same
    /// window and the re-selected seeds.
    FullRebootstrap = 3,
}

impl RetrainMode {
    /// Every mode, in metrics order (index = discriminant).
    pub const ALL: [RetrainMode; 4] = [
        RetrainMode::Incremental,
        RetrainMode::FullCold,
        RetrainMode::FullReanchor,
        RetrainMode::FullRebootstrap,
    ];

    /// Stable metrics name.
    pub fn name(self) -> &'static str {
        match self {
            RetrainMode::Incremental => "incremental",
            RetrainMode::FullCold => "full_cold",
            RetrainMode::FullReanchor => "full_reanchor",
            RetrainMode::FullRebootstrap => "full_rebootstrap",
        }
    }
}

/// Which structural action one folded day fired — the branch selector
/// shared by [`TrainState::ingest_day`] and the retrain path.
enum FoldAction {
    /// Drift trigger fired: history windowed, online model
    /// rebootstrapped, seeds re-selected.
    Rebootstrapped,
    /// Coverage budget exceeded: context re-anchored to the live graph.
    Reanchored,
    /// Neither policy fired; the delta is available for an incremental
    /// advance.
    Kept(IngestDelta),
}

/// One successful `INGEST_DAY` retrain: the refreshed estimator plus
/// the telemetry the daemon folds into `STATS`.
pub struct RetrainOutcome {
    /// The freshly trained estimator, ready to publish.
    pub estimator: TrafficEstimator,
    /// Days the online model has ingested after this one.
    pub days_ingested: u64,
    /// Which path produced the estimator.
    pub mode: RetrainMode,
    /// Per-layer patch telemetry (zeroed on the full paths, which
    /// rebuild every layer instead of patching).
    pub stats: RetrainStats,
    /// Fraction of the pre-ingest live graph's edges this day's delta
    /// touched — the incremental-vs-full decision input.
    pub coverage: f64,
}

/// Everything needed to retrain off the serving path: the road graph,
/// the growing day history, the online correlation model, and the seed
/// set + estimator configuration frozen at startup.
///
/// # The frozen training context
///
/// `context` is the correlation graph the estimator's *training-side*
/// layers (history statistics pairing, HLM phase-A trends, training
/// folds) are computed over. It is frozen at bootstrap and only moves
/// when a re-anchor fallback fires; the *serving-side* layers (trend
/// MRFs, influence/coverage) always follow the live, delta-patched
/// graph. Freezing is what makes `INGEST_DAY` incremental — the HLM
/// accumulators stay valid across days — and the context's evolution
/// is a deterministic function of the ingested day sequence, so a
/// fresh [`TrainState`] fed the same days reproduces the exact same
/// published models ([`TrainState::train`] is that reference).
pub struct TrainState {
    graph: RoadGraph,
    clock: SlotClock,
    days: Vec<SpeedField>,
    online: crowdspeed::online::OnlineCorrelation,
    context: CorrelationGraph,
    trainer: Option<IncrementalTrainer>,
    seeds: Vec<roadnet::RoadId>,
    config: EstimatorConfig,
    drift: crowdspeed::drift::DriftState,
    /// Days a rebootstrap's window truncation dropped this ingest —
    /// kept until the ingest commits so a panic can splice the history
    /// back together ([`TrainState::ingest_and_train`]'s rollback).
    drift_rollback: Option<Vec<SpeedField>>,
}

impl TrainState {
    /// Bootstraps the online correlation model from `history` and
    /// freezes the training inputs.
    pub fn new(
        graph: RoadGraph,
        history: &HistoricalData,
        seeds: Vec<roadnet::RoadId>,
        corr_config: &CorrelationConfig,
        config: EstimatorConfig,
    ) -> TrainState {
        let online = crowdspeed::online::OnlineCorrelation::bootstrap(&graph, history, corr_config);
        let context = online.correlation_graph();
        TrainState {
            graph,
            clock: *history.clock(),
            days: history.days().to_vec(),
            online,
            context,
            trainer: None,
            seeds,
            config,
            drift: crowdspeed::drift::DriftState::default(),
            drift_rollback: None,
        }
    }

    /// Rebuilds the training state from a persisted snapshot: the day
    /// history and online accumulator come back exactly as written, so
    /// **no** bootstrap pass runs — the whole point of resuming is to
    /// skip that work — and a subsequent [`TrainState::train`] or
    /// `INGEST_DAY` continues the identical model trajectory the
    /// writing process was on.
    /// `context` is the frozen training context the writing process was
    /// on (carried by the snapshot) — resuming must **not** re-anchor
    /// to the live graph, or the resumed trajectory would diverge from
    /// the one a non-restarted daemon ingesting the same days follows.
    /// No trainer is standing after a resume; the first `INGEST_DAY`
    /// rebuilds one under this context ([`RetrainMode::FullCold`]).
    /// `seeds` is the *currently deployed* seed set — after a drift
    /// rebootstrap that is the re-selected set the snapshot's estimator
    /// carries, not the bootstrap set the daemon was configured with.
    /// `drift` restores the adaptation clock so the resumed daemon
    /// stays on the writing process's exact trigger trajectory.
    #[allow(clippy::too_many_arguments)]
    pub fn resume(
        graph: RoadGraph,
        seeds: Vec<roadnet::RoadId>,
        config: EstimatorConfig,
        clock: SlotClock,
        days: Vec<SpeedField>,
        online: crowdspeed::online::OnlineCorrelation,
        context: CorrelationGraph,
        drift: crowdspeed::drift::DriftState,
    ) -> TrainState {
        TrainState {
            graph,
            clock,
            days,
            online,
            context,
            trainer: None,
            seeds,
            config,
            drift,
            drift_rollback: None,
        }
    }

    /// The road network the model spans.
    pub fn graph(&self) -> &RoadGraph {
        &self.graph
    }

    /// The slot discretisation of the day history.
    pub fn clock(&self) -> SlotClock {
        self.clock
    }

    /// The full day history (bootstrap window plus ingested days).
    pub fn days(&self) -> &[SpeedField] {
        &self.days
    }

    /// The live online correlation accumulator.
    pub fn online(&self) -> &crowdspeed::online::OnlineCorrelation {
        &self.online
    }

    /// The currently deployed seed set (frozen at startup until a
    /// drift rebootstrap re-selects it).
    pub fn seeds(&self) -> &[roadnet::RoadId] {
        &self.seeds
    }

    /// The drift-adaptation state (signal, trigger clock, overlap).
    pub fn drift(&self) -> &crowdspeed::drift::DriftState {
        &self.drift
    }

    /// Records the epoch a rebootstrapped model was published under —
    /// the daemon calls this after the epoch swap, still holding the
    /// train lock.
    pub fn record_rebootstrap_epoch(&mut self, epoch: u64) {
        self.drift.last_rebootstrap_epoch = epoch;
    }

    /// The estimator configuration frozen at startup.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// The frozen training context (see the type-level doc).
    pub fn context(&self) -> &CorrelationGraph {
        &self.context
    }

    /// Whether an [`IncrementalTrainer`] is standing, ready to take
    /// the next ingest delta-incrementally.
    pub fn has_trainer(&self) -> bool {
        self.trainer.is_some()
    }

    /// Edge count of the live correlation graph — the coverage
    /// denominator. Read off the standing trainer when there is one;
    /// materialised from the online counters otherwise (the two are
    /// bit-identical by the delta-application invariant).
    fn live_edges(&self) -> usize {
        match &self.trainer {
            Some(t) => t.live_correlation().num_edges(),
            None => self.online.correlation_graph().num_edges(),
        }
    }

    /// Rebuilds the incremental trainer from scratch under the current
    /// frozen context with live layers at `live` (`None` = the
    /// context itself), stores it, and returns its estimator.
    fn rebuild_trainer(
        &mut self,
        history: &HistoricalData,
        live: Option<&CorrelationGraph>,
    ) -> Result<TrafficEstimator, CoreError> {
        let trainer = IncrementalTrainer::rebuild(
            &self.graph,
            history,
            self.online.stats(),
            &self.context,
            live,
            &self.seeds,
            &self.config,
        )?;
        let estimator = trainer.estimator()?;
        self.trainer = Some(trainer);
        Ok(estimator)
    }

    /// Applies the context policy for one ingested `delta`:
    /// re-anchors the context to the live graph (and drops any
    /// standing trainer) when the delta's coverage of the pre-ingest
    /// live graph exceeds `max_incremental_fraction`. Returns the
    /// coverage and whether a re-anchor fired. Deterministic, so a
    /// replayed day sequence reproduces the same context trajectory.
    fn apply_context_policy(
        &mut self,
        delta: &IngestDelta,
        live_edges_before: usize,
    ) -> (f64, bool) {
        let coverage = delta.coverage_fraction(live_edges_before);
        let reanchor = coverage > self.config.max_incremental_fraction;
        if reanchor {
            self.context = self.online.correlation_graph();
            self.trainer = None;
        }
        (coverage, reanchor)
    }

    /// Trains a fresh estimator from the current history: a full
    /// rebuild under the frozen context, with the serving layers on
    /// the live correlation graph. Deterministic given the same
    /// ingested days — and **bit-identical** to what the incremental
    /// path publishes after the same day sequence, which is what lets
    /// the integration suite hold an out-of-process reference model.
    /// The rebuilt trainer is kept standing, so a subsequent ingest
    /// proceeds incrementally.
    pub fn train(&mut self) -> Result<TrafficEstimator, CoreError> {
        let history = HistoricalData::from_days(self.clock, self.days.clone());
        let live = self.online.correlation_graph();
        // Skip the duplicate serving-layer build when nothing has
        // diverged from the context (fresh bootstrap, post re-anchor).
        let live = if live.num_roads() == self.context.num_roads()
            && live.edges() == self.context.edges()
        {
            None
        } else {
            Some(live)
        };
        self.rebuild_trainer(&history, live.as_ref())
    }

    /// Rebootstraps in place after a drift trigger: truncates the held
    /// history to the trailing calibration window, refreshes the online
    /// model's reference means and counters from it, re-anchors the
    /// context to the fresh graph, and re-selects the seed set with the
    /// same budget. The resulting state is exactly what
    /// [`TrainState::new`] produces from the window history and the
    /// re-selected seeds, which is the bit-identity the drift suite
    /// pins. Days dropped by the truncation are parked in
    /// `drift_rollback` for the panic path.
    fn rebootstrap_now(&mut self) {
        let window = self.config.drift.as_ref().map_or(0, |d| d.window_days);
        if window > 0 && self.days.len() > window {
            let cut = self.days.len() - window;
            self.drift_rollback = Some(self.days.drain(..cut).collect());
        }
        // After the history is windowed but before anything rebuilds:
        // the worst place to die, which is exactly why the fault drill
        // injects here.
        crate::failpoint::fire("rebootstrap");
        let history = HistoricalData::from_days(self.clock, self.days.clone());
        self.online = self.online.rebootstrap(&self.graph, &history);
        self.context = self.online.correlation_graph();
        let reselection = crowdspeed::drift::reselect_seeds(
            &self.context,
            &self.config.hlm.influence,
            &self.seeds,
            self.config.train_threads,
        );
        self.drift.record_trigger(reselection.overlap as u64);
        self.seeds = reselection.seeds;
        self.trainer = None;
    }

    /// Folds one observed day into the online model, the history, and
    /// the drift/context policies — the mutation path shared by
    /// [`TrainState::ingest_day`] and the retrain. Returns the delta's
    /// coverage and which structural action fired. The drift trigger
    /// is evaluated against the context *before* any re-anchor (a
    /// re-anchored context would read as zero drift by construction)
    /// and supersedes the re-anchor when both would fire.
    fn fold_day(&mut self, day: SpeedField) -> Result<(f64, FoldAction), CoreError> {
        let live_edges = self.live_edges();
        let delta = self.online.ingest_day_delta(&day)?;
        self.days.push(day);
        let coverage = delta.coverage_fraction(live_edges);
        self.drift.note_ingest();
        let triggered = match &self.config.drift {
            Some(drift_config) => {
                let value = crowdspeed::drift::signal(&self.online, &self.context).value();
                self.drift.last_signal = value;
                self.drift.should_trigger(drift_config, value)
            }
            None => false,
        };
        if triggered {
            self.rebootstrap_now();
            return Ok((coverage, FoldAction::Rebootstrapped));
        }
        let (_, reanchor) = self.apply_context_policy(&delta, live_edges);
        if reanchor {
            Ok((coverage, FoldAction::Reanchored))
        } else {
            Ok((coverage, FoldAction::Kept(delta)))
        }
    }

    /// Feeds one observed day into the online correlation model and
    /// the training history, applying the same drift + context policy
    /// the retrain path uses (so a reference state fed days one at a
    /// time stays on the daemon's exact trajectory). Rejects shape
    /// mismatches without mutating anything. Any standing trainer is
    /// dropped — this path does not advance it — leaving the next
    /// [`TrainState::train`] or retrain to rebuild coherently.
    pub fn ingest_day(&mut self, day: SpeedField) -> Result<(), CoreError> {
        self.fold_day(day)?;
        self.trainer = None;
        self.drift_rollback = None;
        Ok(())
    }

    /// One `INGEST_DAY` retrain, choosing the cheapest sound path:
    ///
    /// * standing trainer + delta within the coverage budget →
    ///   **incremental** ([`IncrementalTrainer::advance`], `O(changed)`
    ///   per layer);
    /// * drift trigger fired → **rebootstrap**: window truncation,
    ///   fresh online model, re-selected seeds, full rebuild;
    /// * delta over budget → **re-anchor**: context moves to the live
    ///   graph, full rebuild;
    /// * no standing trainer (resume, prior failure) → **cold
    ///   rebuild** under the existing frozen context.
    ///
    /// All four publish bit-identical estimators to a from-scratch
    /// [`TrainState`] fed the same day sequence (for the rebootstrap:
    /// one cold-started on the post-trigger window with the re-selected
    /// seeds).
    fn retrain_inner(&mut self, day: SpeedField) -> Result<RetrainOutcome, CoreError> {
        let (coverage, action) = self.fold_day(day)?;
        let history = HistoricalData::from_days(self.clock, self.days.clone());
        let (mode, estimator, stats) = match action {
            FoldAction::Rebootstrapped => (
                // Post-rebootstrap the live graph *is* the context.
                RetrainMode::FullRebootstrap,
                self.rebuild_trainer(&history, None)?,
                RetrainStats::default(),
            ),
            FoldAction::Reanchored => (
                // Context just moved to the live graph: live == context.
                RetrainMode::FullReanchor,
                self.rebuild_trainer(&history, None)?,
                RetrainStats::default(),
            ),
            FoldAction::Kept(delta) => {
                if let Some(trainer) = self.trainer.as_mut() {
                    let (estimator, stats) = trainer.advance(&history, &delta)?;
                    (RetrainMode::Incremental, estimator, stats)
                } else {
                    let live = self.online.correlation_graph();
                    (
                        RetrainMode::FullCold,
                        self.rebuild_trainer(&history, Some(&live))?,
                        RetrainStats::default(),
                    )
                }
            }
        };
        Ok(RetrainOutcome {
            estimator,
            days_ingested: self.days_ingested(),
            mode,
            stats,
            coverage,
        })
    }

    /// The daemon's fault-isolated retrain: folds `day` in and trains a
    /// new estimator, catching any panic along the way.
    ///
    /// On a panic the online counters, day history, and frozen context
    /// are rolled back to their pre-ingest snapshot, so a fault
    /// mid-fold cannot leave half-updated statistics behind — the
    /// state either advances by exactly one day with a freshly trained
    /// model, or not at all. On *any* failure the standing trainer is
    /// dropped ([`IncrementalTrainer::advance`] may leave its layers
    /// at different days); the next ingest cold-rebuilds under the
    /// restored context, which is bit-identical to never having had a
    /// trainer. The caller keeps serving the previous epoch either way
    /// (graceful degradation); `parking_lot` mutexes are not poisoned
    /// by design, so the train path stays usable after the rollback.
    pub fn ingest_and_train(&mut self, day: SpeedField) -> Result<RetrainOutcome, RetrainError> {
        let online_snapshot = self.online.clone();
        let context_snapshot = self.context.clone();
        let seeds_snapshot = self.seeds.clone();
        let drift_snapshot = self.drift;
        let days_before = self.days.len();
        self.drift_rollback = None;
        let this = &mut *self;
        let outcome = catch_unwind(AssertUnwindSafe(move || -> Result<_, CoreError> {
            crate::failpoint::fire("retrain");
            this.retrain_inner(day)
        }));
        match outcome {
            Ok(Ok(outcome)) => {
                self.drift_rollback = None;
                Ok(outcome)
            }
            Ok(Err(e)) => {
                self.drift_rollback = None;
                self.trainer = None;
                Err(RetrainError::Core(e))
            }
            Err(payload) => {
                self.online = online_snapshot;
                self.context = context_snapshot;
                self.seeds = seeds_snapshot;
                self.drift = drift_snapshot;
                self.trainer = None;
                // A mid-rebootstrap panic may have windowed the
                // history: splice the dropped prefix back before
                // dropping the half-ingested day.
                if let Some(mut prefix) = self.drift_rollback.take() {
                    prefix.append(&mut self.days);
                    self.days = prefix;
                }
                self.days.truncate(days_before);
                Err(RetrainError::Panicked(panic_message(payload)))
            }
        }
    }

    /// Days the online model has ingested (bootstrap window included).
    pub fn days_ingested(&self) -> u64 {
        self.online.days_ingested() as u64
    }

    /// Expected `(slots, roads)` shape for an ingested day.
    pub fn day_shape(&self) -> (usize, usize) {
        (self.clock.slots_per_day, self.graph.num_roads())
    }
}
