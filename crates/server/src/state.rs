//! Shared daemon state: the hot-swappable model slot and the training
//! state that produces new epochs.
//!
//! # Epoch-swap invariants
//!
//! * Readers take the [`parking_lot::RwLock`] read lock only long
//!   enough to clone the `Arc<ModelEpoch>`; every estimate is computed
//!   against that clone, outside any lock.
//! * [`ModelSlot::publish`] takes the write lock only to swap the
//!   pointer and bump the epoch — never while training. Training runs
//!   on the ingesting connection's thread under the separate
//!   [`TrainState`] mutex, so serving throughput is unaffected by a
//!   retrain in progress.
//! * In-flight requests admitted before a swap finish on the epoch
//!   they started with; requests admitted after see the new epoch.
//!   There is no window in which an estimate mixes two models.

use crowdspeed::prelude::*;
use crowdspeed::CoreError;
use parking_lot::RwLock;
use roadnet::RoadGraph;
use std::sync::Arc;
use trafficsim::{SlotClock, SpeedField};

/// One published model generation.
pub struct ModelEpoch {
    /// Monotonic generation counter (first publish = 1).
    pub epoch: u64,
    /// The trained estimator serving this generation.
    pub estimator: TrafficEstimator,
}

/// The serving-side pointer to the current model, swappable with zero
/// downtime.
pub struct ModelSlot {
    current: RwLock<Arc<ModelEpoch>>,
}

impl ModelSlot {
    /// Wraps a freshly trained estimator as epoch 1.
    pub fn new(estimator: TrafficEstimator) -> ModelSlot {
        ModelSlot {
            current: RwLock::new(Arc::new(ModelEpoch {
                epoch: 1,
                estimator,
            })),
        }
    }

    /// Snapshot of the current model; cheap (one `Arc` clone under a
    /// read lock).
    pub fn current(&self) -> Arc<ModelEpoch> {
        self.current.read().clone()
    }

    /// Atomically publishes `estimator` as the next epoch and returns
    /// the new epoch number. Readers holding the previous `Arc` are
    /// unaffected.
    pub fn publish(&self, estimator: TrafficEstimator) -> u64 {
        let mut slot = self.current.write();
        let epoch = slot.epoch + 1;
        *slot = Arc::new(ModelEpoch { epoch, estimator });
        epoch
    }
}

/// Everything needed to retrain off the serving path: the road graph,
/// the growing day history, the online correlation model, and the seed
/// set + estimator configuration frozen at startup.
pub struct TrainState {
    graph: RoadGraph,
    clock: SlotClock,
    days: Vec<SpeedField>,
    online: crowdspeed::online::OnlineCorrelation,
    seeds: Vec<roadnet::RoadId>,
    config: EstimatorConfig,
}

impl TrainState {
    /// Bootstraps the online correlation model from `history` and
    /// freezes the training inputs.
    pub fn new(
        graph: RoadGraph,
        history: &HistoricalData,
        seeds: Vec<roadnet::RoadId>,
        corr_config: &CorrelationConfig,
        config: EstimatorConfig,
    ) -> TrainState {
        let online = crowdspeed::online::OnlineCorrelation::bootstrap(&graph, history, corr_config);
        TrainState {
            graph,
            clock: *history.clock(),
            days: history.days().to_vec(),
            online,
            seeds,
            config,
        }
    }

    /// Trains a fresh estimator from the current history and the live
    /// correlation counters. Deterministic given the same ingested
    /// days, which is what lets the integration suite assert a
    /// post-swap daemon serves bit-identical estimates to an
    /// independently trained model.
    pub fn train(&self) -> Result<TrafficEstimator, CoreError> {
        let history = HistoricalData::from_days(self.clock, self.days.clone());
        TrafficEstimator::train(
            &self.graph,
            &history,
            self.online.stats(),
            &self.online.correlation_graph(),
            &self.seeds,
            &self.config,
        )
    }

    /// Feeds one observed day into the online correlation model and
    /// the training history. Rejects shape mismatches without mutating
    /// either.
    pub fn ingest_day(&mut self, day: SpeedField) -> Result<(), CoreError> {
        self.online.ingest_day(&day)?;
        self.days.push(day);
        Ok(())
    }

    /// Days the online model has ingested (bootstrap window included).
    pub fn days_ingested(&self) -> u64 {
        self.online.days_ingested() as u64
    }

    /// Expected `(slots, roads)` shape for an ingested day.
    pub fn day_shape(&self) -> (usize, usize) {
        (self.clock.slots_per_day, self.graph.num_roads())
    }
}
