//! Property tests for the `crowdspeedd` wire protocol: every frame
//! type round-trips through encode → decode, and malformed frames fail
//! with typed errors instead of panics or desyncs.

use crowdspeed_server::protocol::{
    read_frame, write_frame, BatchItem, BatchOutcome, CommandStats, ErrorKind, EstimateReply,
    Request, Response, ShardHealth, ShardIdentity, StatsReply, WireError, LATENCY_BUCKET_BOUNDS_US,
};
use proptest::prelude::*;

/// Largest integer the JSON wire carries exactly (numbers travel as
/// `f64`).
const MAX_EXACT: u64 = 1 << 53;

/// Wire equality for speeds: finite values round-trip bit-exactly;
/// every non-finite value intentionally collapses to JSON `null` and
/// comes back as NaN.
fn float_eq_wire(sent: f64, got: f64) -> bool {
    if sent.is_finite() {
        sent.to_bits() == got.to_bits()
    } else {
        got.is_nan()
    }
}

/// Canonicalises a float the way the estimator emits them: finite
/// values untouched, everything else the canonical NaN. On canonical
/// inputs the JSON and binary codecs must agree bit-for-bit.
fn canon(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        f64::NAN
    }
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #[test]
    fn estimate_requests_roundtrip(
        slot in 0usize..100_000,
        obs in prop::collection::vec((any::<u32>(), any::<f64>()), 0..16),
        deadline in 0u64..1_000_000,
        has_deadline in any::<bool>(),
        // The vendored proptest has no `prop::option`: model Option as
        // a bool plus the value it gates.
        has_filter in any::<bool>(),
        filter_roads in prop::collection::vec(any::<u32>(), 0..16),
    ) {
        let road_filter = has_filter.then_some(filter_roads);
        let req = Request::Estimate {
            slot_of_day: slot,
            observations: obs.clone(),
            deadline_ms: has_deadline.then_some(deadline),
            roads: road_filter.clone(),
        };
        let decoded = Request::decode(&req.encode()).map_err(|(k, m)| format!("{k}: {m}"))?;
        let Request::Estimate {
            slot_of_day,
            observations,
            deadline_ms,
            roads,
        } = decoded
        else {
            return Err("wrong variant".to_string());
        };
        prop_assert_eq!(slot_of_day, slot);
        prop_assert_eq!(deadline_ms, has_deadline.then_some(deadline));
        prop_assert_eq!(roads, road_filter);
        prop_assert_eq!(observations.len(), obs.len());
        for (&(road_a, speed_a), &(road_b, speed_b)) in obs.iter().zip(&observations) {
            prop_assert_eq!(road_a, road_b);
            prop_assert!(
                float_eq_wire(speed_a, speed_b),
                "speed {speed_a:?} came back as {speed_b:?}"
            );
        }
    }

    #[test]
    fn ingest_requests_roundtrip(
        rows in prop::collection::vec(prop::collection::vec(any::<f64>(), 0..8), 0..8),
    ) {
        let req = Request::IngestDay { rows: rows.clone() };
        let decoded = Request::decode(&req.encode()).map_err(|(k, m)| format!("{k}: {m}"))?;
        let Request::IngestDay { rows: got } = decoded else {
            return Err("wrong variant".to_string());
        };
        prop_assert_eq!(got.len(), rows.len());
        for (sent_row, got_row) in rows.iter().zip(&got) {
            prop_assert_eq!(sent_row.len(), got_row.len());
            for (&s, &g) in sent_row.iter().zip(got_row) {
                prop_assert!(float_eq_wire(s, g), "cell {s:?} came back as {g:?}");
            }
        }
    }

    #[test]
    fn bare_requests_roundtrip(which in 0usize..3) {
        let req = match which {
            0 => Request::Stats,
            1 => Request::Shutdown,
            _ => Request::Snapshot,
        };
        let decoded = Request::decode(&req.encode()).map_err(|(k, m)| format!("{k}: {m}"))?;
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn estimate_responses_roundtrip(
        epoch in 0u64..MAX_EXACT,
        speeds in prop::collection::vec(any::<f64>(), 0..16),
        p_up in prop::collection::vec(0.0f64..1.0, 0..16),
        trends in prop::collection::vec(any::<bool>(), 0..16),
        ignored in 0u64..MAX_EXACT,
        unavailable in prop::collection::vec(any::<u32>(), 0..8),
    ) {
        let resp = Response::Estimate(EstimateReply {
            epoch,
            speeds: speeds.clone(),
            p_up: p_up.clone(),
            trends: trends.clone(),
            ignored_observations: ignored,
            unavailable: unavailable.clone(),
        });
        let decoded = Response::decode(&resp.encode())?;
        let Response::Estimate(reply) = decoded else {
            return Err("wrong variant".to_string());
        };
        prop_assert_eq!(reply.epoch, epoch);
        prop_assert_eq!(reply.ignored_observations, ignored);
        prop_assert_eq!(&reply.unavailable, &unavailable);
        prop_assert_eq!(&reply.p_up, &p_up);
        prop_assert_eq!(&reply.trends, &trends);
        prop_assert_eq!(reply.speeds.len(), speeds.len());
        for (&s, &g) in speeds.iter().zip(&reply.speeds) {
            prop_assert!(float_eq_wire(s, g), "speed {s:?} came back as {g:?}");
        }
    }

    #[test]
    fn ingested_error_and_shutdown_responses_roundtrip(
        which in 0usize..3,
        epoch in 0u64..MAX_EXACT,
        days in 0u64..MAX_EXACT,
        kind_idx in 0usize..11,
        message_idx in 0usize..4,
    ) {
        let kinds = [
            ErrorKind::Overloaded,
            ErrorKind::DeadlineExceeded,
            ErrorKind::NoObservations,
            ErrorKind::ShapeMismatch,
            ErrorKind::BadRequest,
            ErrorKind::UnknownCommand,
            ErrorKind::UnsupportedVersion,
            ErrorKind::FrameTooLarge,
            ErrorKind::RateLimited,
            ErrorKind::ShardUnavailable,
            ErrorKind::Internal,
        ];
        let messages = ["", "queue full", "weird \"quotes\" \\ and \u{e9}\u{1f600}", "line\nbreak\ttab"];
        let resp = match which {
            0 => Response::Ingested {
                epoch,
                days_ingested: days,
            },
            1 => Response::ShuttingDown,
            _ => Response::Error {
                kind: kinds[kind_idx],
                message: messages[message_idx].to_string(),
            },
        };
        let decoded = Response::decode(&resp.encode())?;
        prop_assert_eq!(decoded, resp);
    }

    #[test]
    fn stats_responses_roundtrip(
        epoch in 0u64..MAX_EXACT,
        uptime_ms in 0u64..MAX_EXACT,
        days in 0u64..MAX_EXACT,
        counters in prop::collection::vec((0u64..MAX_EXACT, 0u64..MAX_EXACT, 0u64..MAX_EXACT), 5usize),
        // Bundled: proptest strategy tuples cap out at 8 parameters.
        faults in (0u64..MAX_EXACT, 0u64..MAX_EXACT, 0u64..MAX_EXACT, 0u64..MAX_EXACT, 0u64..MAX_EXACT),
        snaps in (0u64..MAX_EXACT, 0u64..MAX_EXACT, 0u64..2, 0u64..MAX_EXACT),
        snapshot_rejects in prop::collection::vec(0u64..MAX_EXACT, 7usize),
        retrains in (prop::collection::vec(0u64..MAX_EXACT, 3usize), 0u64..MAX_EXACT, 0u64..MAX_EXACT, 0u64..MAX_EXACT),
        latency in prop::collection::vec(0u64..MAX_EXACT, LATENCY_BUCKET_BOUNDS_US.len() + 1),
        rate_limited in 0u64..MAX_EXACT,
        // Connection gauge and per-codec request counters.
        conn_codec in (0u64..MAX_EXACT, 0u64..MAX_EXACT, 0u64..MAX_EXACT),
        // No `prop::option` in the vendored proptest: a bool gates the
        // identity tuple. Full 64-bit fingerprint range: it travels as
        // hex, not f64.
        has_shard in any::<bool>(),
        shard_identity in (0u32..64, 1u32..64, 0u64..MAX_EXACT, any::<u64>()),
        // Drift gauges: the signal lives in [0, 1] and survives the
        // JSON codec exactly when it is a small dyadic rational.
        drift in (0u32..=16, 0u64..MAX_EXACT, 0u64..MAX_EXACT, 0u64..MAX_EXACT),
        // Nested tuples keep each strategy tuple within the vendored
        // 6-element cap.
        shards in prop::collection::vec(
            (
                (0u32..64, any::<bool>(), any::<bool>()),
                (0u64..MAX_EXACT, 0u64..MAX_EXACT, 0u64..MAX_EXACT, 0u64..MAX_EXACT),
            ),
            0..4,
        ),
    ) {
        let (rejected_overload, rejected_deadline, rejected_connections, worker_panics, retrain_failures) = faults;
        let (snapshot_writes, snapshot_write_failures, snapshot_resumed, ignored_observations) = snaps;
        let names = ["estimate", "ingest_day", "stats", "shutdown", "snapshot"];
        let reasons = ["io", "bad_magic", "bad_version", "truncated", "bad_checksum", "config_mismatch", "decode"];
        let resp = Response::Stats(StatsReply {
            epoch,
            uptime_ms,
            days_ingested: days,
            commands: names
                .iter()
                .zip(&counters)
                .map(|(&name, &(received, ok, errors))| {
                    (name.to_string(), CommandStats { received, ok, errors })
                })
                .collect(),
            rejected_overload,
            rejected_deadline,
            rejected_connections,
            worker_panics,
            retrain_failures,
            retrains: ["incremental", "full_cold", "full_reanchor"]
                .iter()
                .zip(&retrains.0)
                .map(|(&name, &count)| (name.to_string(), count))
                .collect(),
            retrain_edges_changed: retrains.1,
            retrain_rows_folded: retrains.2,
            retrain_incremental_ms: retrains.3,
            latency_counts: latency,
            snapshot_writes,
            snapshot_write_failures,
            snapshot_resumed,
            snapshot_rejects: reasons
                .iter()
                .zip(&snapshot_rejects)
                .map(|(&name, &count)| (name.to_string(), count))
                .collect(),
            ignored_observations,
            rate_limited_requests: rate_limited,
            open_connections: conn_codec.0,
            requests_json: conn_codec.1,
            requests_binary: conn_codec.2,
            shard: has_shard.then(|| {
                let (index, count, owned_roads, fingerprint) = shard_identity;
                ShardIdentity {
                    index,
                    count,
                    owned_roads,
                    fingerprint,
                }
            }),
            shards: shards
                .iter()
                .map(
                    |&((shard, up, plan_ok), (epoch, days_ingested, restarts, owned_roads))| {
                        ShardHealth {
                            shard,
                            up,
                            plan_ok,
                            epoch,
                            days_ingested,
                            restarts,
                            owned_roads,
                        }
                    },
                )
                .collect(),
            drift_signal: drift.0 as f64 / 16.0,
            drift_triggers: drift.1,
            drift_last_rebootstrap_epoch: drift.2,
            drift_seed_overlap: drift.3,
        });
        let decoded = Response::decode(&resp.encode())?;
        prop_assert_eq!(decoded, resp);
    }

    #[test]
    fn truncated_frames_fail_without_panicking(
        payload in prop::collection::vec(any::<u8>(), 0..64),
        cut in 0usize..80,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        // Any strict prefix of a frame must fail to read cleanly.
        buf.truncate(cut.min(buf.len() - 1));
        let mut cursor = std::io::Cursor::new(buf);
        let result = read_frame(&mut cursor, 1 << 20, &|| false);
        prop_assert!(
            matches!(result, Err(WireError::Closed | WireError::Truncated)),
            "got {result:?}"
        );
    }

    #[test]
    fn oversized_declarations_are_rejected_before_the_payload(
        max in 0usize..64,
        excess in 1usize..1000,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &vec![0u8; max + excess]).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor, max, &|| false) {
            Err(WireError::Oversized { declared, max: got_max }) => {
                prop_assert_eq!(declared, max + excess);
                prop_assert_eq!(got_max, max);
            }
            other => return Err(format!("expected Oversized, got {other:?}")),
        }
    }

    #[test]
    fn unknown_commands_decode_to_typed_errors(letters in prop::collection::vec(0u8..26, 1..12)) {
        let name: String = letters.iter().map(|&l| (b'a' + l) as char).collect();
        prop_assume!(!matches!(
            name.as_str(),
            "estimate" | "ingest" | "stats" | "shutdown" | "snapshot"
        ));
        let payload = format!("{{\"cmd\":{:?}}}", name);
        match Request::decode(payload.as_bytes()) {
            // "ingest_day" cannot be generated (no underscore in the
            // alphabet), so every name is either unknown or a known
            // command with missing fields.
            Err((ErrorKind::UnknownCommand | ErrorKind::BadRequest, _)) => {}
            other => return Err(format!("expected a typed error, got {other:?}")),
        }
    }

    #[test]
    fn garbage_payloads_never_panic(payload in prop::collection::vec(any::<u8>(), 0..128)) {
        // Either parses or fails with a typed error — must not panic.
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
    }
}

// Binary ↔ JSON codec equivalence: for every canonical value (finite
// floats plus the canonical NaN) the two codecs must decode to
// bit-identical structures, and the binary codec on its own must carry
// arbitrary `f64` bit patterns and full-width `u64`s verbatim — both
// beyond what the JSON wire can promise.
proptest! {
    #[test]
    fn estimate_requests_agree_across_codecs(
        slot in 0usize..100_000,
        obs in prop::collection::vec((any::<u32>(), any::<f64>()), 0..16),
        deadline in 0u64..1_000_000,
        has_deadline in any::<bool>(),
        has_filter in any::<bool>(),
        filter_roads in prop::collection::vec(any::<u32>(), 0..16),
    ) {
        let obs: Vec<(u32, f64)> = obs.into_iter().map(|(r, v)| (r, canon(v))).collect();
        let req = Request::Estimate {
            slot_of_day: slot,
            observations: obs,
            deadline_ms: has_deadline.then_some(deadline),
            roads: has_filter.then_some(filter_roads),
        };
        let from_json = Request::decode(&req.encode()).map_err(|(k, m)| format!("{k}: {m}"))?;
        let from_binary =
            Request::decode_binary(&req.encode_binary()).map_err(|(k, m)| format!("{k}: {m}"))?;
        let (
            Request::Estimate { slot_of_day: sj, observations: oj, deadline_ms: dj, roads: rj },
            Request::Estimate { slot_of_day: sb, observations: ob, deadline_ms: db, roads: rb },
        ) = (from_json, from_binary)
        else {
            return Err("wrong variant".to_string());
        };
        prop_assert_eq!(sj, sb);
        prop_assert_eq!(dj, db);
        prop_assert_eq!(rj, rb);
        prop_assert_eq!(oj.len(), ob.len());
        for (&(road_j, speed_j), &(road_b, speed_b)) in oj.iter().zip(&ob) {
            prop_assert_eq!(road_j, road_b);
            prop_assert_eq!(
                speed_j.to_bits(),
                speed_b.to_bits(),
                "codecs disagree: {speed_j:?} vs {speed_b:?}"
            );
        }
    }

    #[test]
    fn batch_requests_roundtrip_both_codecs(
        items in prop::collection::vec(
            (
                0usize..100_000,
                prop::collection::vec((any::<u32>(), any::<f64>()), 0..8),
                any::<bool>(),
                prop::collection::vec(any::<u32>(), 0..8),
            ),
            0..6,
        ),
        deadline in 0u64..1_000_000,
        has_deadline in any::<bool>(),
    ) {
        let items: Vec<BatchItem> = items
            .into_iter()
            .map(|(slot, obs, has_roads, roads)| BatchItem {
                slot_of_day: slot,
                observations: obs.into_iter().map(|(r, v)| (r, canon(v))).collect(),
                roads: has_roads.then_some(roads),
            })
            .collect();
        let req = Request::EstimateBatch {
            items,
            deadline_ms: has_deadline.then_some(deadline),
        };
        let from_json = Request::decode(&req.encode()).map_err(|(k, m)| format!("{k}: {m}"))?;
        let from_binary =
            Request::decode_binary(&req.encode_binary()).map_err(|(k, m)| format!("{k}: {m}"))?;
        let (
            Request::EstimateBatch { items: ij, deadline_ms: dj },
            Request::EstimateBatch { items: ib, deadline_ms: db },
        ) = (from_json, from_binary)
        else {
            return Err("wrong variant".to_string());
        };
        prop_assert_eq!(dj, db);
        prop_assert_eq!(ij.len(), ib.len());
        for (a, b) in ij.iter().zip(&ib) {
            prop_assert_eq!(a.slot_of_day, b.slot_of_day);
            prop_assert_eq!(&a.roads, &b.roads);
            prop_assert_eq!(a.observations.len(), b.observations.len());
            for (&(road_a, speed_a), &(road_b, speed_b)) in a.observations.iter().zip(&b.observations) {
                prop_assert_eq!(road_a, road_b);
                prop_assert_eq!(speed_a.to_bits(), speed_b.to_bits());
            }
        }
    }

    #[test]
    fn estimate_responses_agree_across_codecs(
        epoch in 0u64..MAX_EXACT,
        speeds in prop::collection::vec(any::<f64>(), 0..16),
        p_up in prop::collection::vec(0.0f64..1.0, 0..16),
        trends in prop::collection::vec(any::<bool>(), 0..16),
        ignored in 0u64..MAX_EXACT,
        unavailable in prop::collection::vec(any::<u32>(), 0..8),
    ) {
        let resp = Response::Estimate(EstimateReply {
            epoch,
            speeds: speeds.into_iter().map(canon).collect(),
            p_up,
            trends,
            ignored_observations: ignored,
            unavailable,
        });
        let from_json = Response::decode(&resp.encode())?;
        let from_binary = Response::decode_binary(&resp.encode_binary())?;
        let (Response::Estimate(rj), Response::Estimate(rb)) = (from_json, from_binary) else {
            return Err("wrong variant".to_string());
        };
        prop_assert_eq!(rj.epoch, rb.epoch);
        prop_assert_eq!(rj.ignored_observations, rb.ignored_observations);
        prop_assert_eq!(&rj.unavailable, &rb.unavailable);
        prop_assert_eq!(&rj.trends, &rb.trends);
        prop_assert!(bits_eq(&rj.speeds, &rb.speeds), "speeds disagree across codecs");
        prop_assert!(bits_eq(&rj.p_up, &rb.p_up), "p_up disagree across codecs");
    }

    #[test]
    fn batch_responses_roundtrip_both_codecs(
        outcomes in prop::collection::vec(
            (
                any::<bool>(),
                0u64..MAX_EXACT,
                prop::collection::vec(any::<f64>(), 0..8),
                0usize..11,
            ),
            0..6,
        ),
    ) {
        let kinds = [
            ErrorKind::Overloaded,
            ErrorKind::DeadlineExceeded,
            ErrorKind::NoObservations,
            ErrorKind::ShapeMismatch,
            ErrorKind::BadRequest,
            ErrorKind::UnknownCommand,
            ErrorKind::UnsupportedVersion,
            ErrorKind::FrameTooLarge,
            ErrorKind::RateLimited,
            ErrorKind::ShardUnavailable,
            ErrorKind::Internal,
        ];
        let resp = Response::Batch(
            outcomes
                .into_iter()
                .map(|(is_ok, epoch, speeds, kind_idx)| {
                    if is_ok {
                        let speeds: Vec<f64> = speeds.into_iter().map(canon).collect();
                        BatchOutcome::Estimate(EstimateReply {
                            epoch,
                            p_up: speeds.iter().map(|s| s.abs().fract()).collect(),
                            trends: speeds.iter().map(|s| *s > 0.0).collect(),
                            ignored_observations: epoch / 2,
                            unavailable: vec![],
                            speeds,
                        })
                    } else {
                        BatchOutcome::Error {
                            kind: kinds[kind_idx],
                            message: format!("failure {kind_idx}"),
                        }
                    }
                })
                .collect(),
        );
        let from_json = Response::decode(&resp.encode())?;
        let from_binary = Response::decode_binary(&resp.encode_binary())?;
        let (Response::Batch(oj), Response::Batch(ob)) = (from_json, from_binary) else {
            return Err("wrong variant".to_string());
        };
        prop_assert_eq!(oj.len(), ob.len());
        for (a, b) in oj.iter().zip(&ob) {
            match (a, b) {
                (BatchOutcome::Estimate(ra), BatchOutcome::Estimate(rb)) => {
                    prop_assert_eq!(ra.epoch, rb.epoch);
                    prop_assert!(bits_eq(&ra.speeds, &rb.speeds));
                    prop_assert!(bits_eq(&ra.p_up, &rb.p_up));
                    prop_assert_eq!(&ra.trends, &rb.trends);
                }
                (
                    BatchOutcome::Error { kind: ka, message: ma },
                    BatchOutcome::Error { kind: kb, message: mb },
                ) => {
                    prop_assert_eq!(ka, kb);
                    prop_assert_eq!(ma, mb);
                }
                _ => return Err("outcome variants disagree across codecs".to_string()),
            }
        }
    }

    #[test]
    fn binary_carries_f64_bits_verbatim(
        slot in 0usize..100_000,
        bit_patterns in prop::collection::vec(any::<u64>(), 1..16),
    ) {
        // The binary codec must preserve EVERY bit pattern — NaN
        // payloads, signalling NaNs, infinities — which JSON cannot.
        let obs: Vec<(u32, f64)> = bit_patterns
            .iter()
            .enumerate()
            .map(|(i, &bits)| (i as u32, f64::from_bits(bits)))
            .collect();
        let req = Request::Estimate {
            slot_of_day: slot,
            observations: obs,
            deadline_ms: None,
            roads: None,
        };
        let decoded =
            Request::decode_binary(&req.encode_binary()).map_err(|(k, m)| format!("{k}: {m}"))?;
        let Request::Estimate { observations, .. } = decoded else {
            return Err("wrong variant".to_string());
        };
        prop_assert_eq!(observations.len(), bit_patterns.len());
        for (&bits, &(_, got)) in bit_patterns.iter().zip(&observations) {
            prop_assert_eq!(bits, got.to_bits(), "binary codec altered f64 bits");
        }
    }

    #[test]
    fn binary_carries_full_u64_counters(
        epoch in any::<u64>(),
        days in any::<u64>(),
    ) {
        // JSON numbers clip at 2^53; the binary codec carries the full
        // 64-bit range.
        let resp = Response::Ingested {
            epoch,
            days_ingested: days,
        };
        let decoded = Response::decode_binary(&resp.encode_binary())?;
        prop_assert_eq!(decoded, resp);
    }

    #[test]
    fn truncated_binary_requests_fail_typed(
        obs in prop::collection::vec((any::<u32>(), any::<f64>()), 0..8),
        cut_fraction in 0.0f64..1.0,
    ) {
        let req = Request::Estimate {
            slot_of_day: 7,
            observations: obs,
            deadline_ms: Some(250),
            roads: None,
        };
        let full = req.encode_binary();
        // Any strict prefix must fail with a typed error, not a panic
        // and not a bogus decode.
        let cut = ((full.len() - 1) as f64 * cut_fraction) as usize;
        match Request::decode_binary(&full[..cut]) {
            Err((ErrorKind::BadRequest | ErrorKind::UnknownCommand, _)) => {}
            other => return Err(format!("expected a typed error, got {other:?}")),
        }
    }

    #[test]
    fn garbage_binary_payloads_never_panic(payload in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = Request::decode_binary(&payload);
        let _ = Response::decode_binary(&payload);
    }
}
